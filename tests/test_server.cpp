// Unit tests for the authoritative server: positive answers, NODATA,
// NXDOMAIN with complete NSEC3 closest-encloser proofs, wildcard synthesis,
// referrals (secure, insecure, opt-out), glue, and lazy zone hosting.
#include <gtest/gtest.h>

#include <memory>

#include "dns/dnssec.hpp"
#include "server/auth_server.hpp"
#include "zone/signer.hpp"

namespace zh::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RrType;
using zone::Zone;

constexpr std::uint16_t kIterations = 7;

std::shared_ptr<const Zone> make_signed_zone() {
  auto zone = std::make_shared<Zone>(Name::must_parse("example.com"));
  zone->add(dns::make_soa(zone->apex(), 3600,
                          Name::must_parse("ns1.example.com"), 1));
  zone->add(dns::make_ns(zone->apex(), 3600,
                         Name::must_parse("ns1.example.com")));
  zone->add(dns::make_a(Name::must_parse("ns1.example.com"), 3600, 192, 0, 2,
                        53));
  zone->add(dns::make_a(Name::must_parse("www.example.com"), 300, 192, 0, 2,
                        80));
  zone->add(dns::make_txt(Name::must_parse("www.example.com"), 300, "web"));
  zone->add(dns::make_a(Name::must_parse("*.wc.example.com"), 300, 192, 0, 2,
                        100));
  // Secure delegation.
  zone->add(dns::make_ns(Name::must_parse("secure.example.com"), 3600,
                         Name::must_parse("ns1.secure.example.com")));
  zone->add(dns::make_a(Name::must_parse("ns1.secure.example.com"), 3600, 192,
                        0, 2, 60));
  dns::DsRdata ds;
  ds.key_tag = 1234;
  ds.algorithm = 253;
  ds.digest.assign(32, 0x22);
  zone->add(dns::ResourceRecord::make(Name::must_parse("secure.example.com"),
                                      RrType::kDs, 3600, ds));
  // Insecure delegation.
  zone->add(dns::make_ns(Name::must_parse("insecure.example.com"), 3600,
                         Name::must_parse("ns.other.net")));

  zone::SignerConfig config;
  config.nsec3.iterations = kIterations;
  config.nsec3.salt = {0xca, 0xfe};
  zone::sign_zone(*zone, config);
  return zone;
}

Message ask(const AuthoritativeServer& server, std::string_view qname,
            RrType qtype, bool dnssec = true) {
  const Message query =
      Message::make_query(1, Name::must_parse(qname), qtype, dnssec);
  return server.handle(query, simnet::IpAddress::v4(198, 51, 100, 1));
}

std::size_t count_type(const std::vector<dns::ResourceRecord>& section,
                       RrType type) {
  std::size_t n = 0;
  for (const auto& rr : section)
    if (rr.type == type) ++n;
  return n;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { server_.add_zone(make_signed_zone()); }
  AuthoritativeServer server_{"ns1.example.com"};
};

TEST_F(ServerTest, PositiveAnswerWithSignature) {
  const Message resp = ask(server_, "www.example.com", RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.header.aa);
  ASSERT_EQ(resp.answers_of_type(RrType::kA).size(), 1u);
  EXPECT_EQ(count_type(resp.answers, RrType::kRrsig), 1u);
}

TEST_F(ServerTest, PositiveAnswerWithoutDoBitOmitsSignatures) {
  const Message resp = ask(server_, "www.example.com", RrType::kA,
                           /*dnssec=*/false);
  EXPECT_EQ(resp.answers_of_type(RrType::kA).size(), 1u);
  EXPECT_EQ(count_type(resp.answers, RrType::kRrsig), 0u);
}

TEST_F(ServerTest, NodataReturnsSoaAndMatchingNsec3) {
  const Message resp = ask(server_, "www.example.com", RrType::kAaaa);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answers.empty());
  EXPECT_EQ(count_type(resp.authorities, RrType::kSoa), 1u);
  const auto nsec3s = resp.authorities_of_type(RrType::kNsec3);
  ASSERT_EQ(nsec3s.size(), 1u);
  // The NSEC3 must *match* www.example.com and prove AAAA absent, A present.
  const auto rdata = nsec3s[0].as<dns::Nsec3Rdata>();
  ASSERT_TRUE(rdata);
  EXPECT_TRUE(rdata->types.contains(RrType::kA));
  EXPECT_FALSE(rdata->types.contains(RrType::kAaaa));
  EXPECT_EQ(rdata->iterations, kIterations);
}

TEST_F(ServerTest, NxdomainCarriesFullClosestEncloserProof) {
  const Message resp = ask(server_, "does-not-exist.example.com", RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNxDomain);
  EXPECT_EQ(count_type(resp.authorities, RrType::kSoa), 1u);
  const auto nsec3s = resp.authorities_of_type(RrType::kNsec3);
  EXPECT_EQ(nsec3s.size(), 3u);  // match(CE) + cover(next closer) + cover(*)
  EXPECT_EQ(count_type(resp.authorities, RrType::kRrsig), 4u);  // 3 + SOA

  // Verify the proof actually proves: CE = example.com matches, the qname
  // and wildcard hashes are covered.
  const std::vector<std::uint8_t> salt = {0xca, 0xfe};
  const auto ce_hash = dns::nsec3_hash_name(Name::must_parse("example.com"),
                                            salt, kIterations);
  const auto nc_hash = dns::nsec3_hash_name(
      Name::must_parse("does-not-exist.example.com"), salt, kIterations);
  const auto wc_hash = dns::nsec3_hash_name(
      Name::must_parse("*.example.com"), salt, kIterations);

  bool ce_matched = false, nc_covered = false, wc_covered = false;
  for (const auto& rr : nsec3s) {
    const auto owner_hash =
        dns::nsec3_owner_hash(rr.name, Name::must_parse("example.com"));
    ASSERT_TRUE(owner_hash);
    const auto rd = rr.as<dns::Nsec3Rdata>();
    ASSERT_TRUE(rd);
    if (*owner_hash == ce_hash) ce_matched = true;
    if (dns::nsec3_covers(*owner_hash, rd->next_hash, nc_hash))
      nc_covered = true;
    if (dns::nsec3_covers(*owner_hash, rd->next_hash, wc_hash))
      wc_covered = true;
  }
  EXPECT_TRUE(ce_matched);
  EXPECT_TRUE(nc_covered);
  EXPECT_TRUE(wc_covered);
}

TEST_F(ServerTest, WildcardExpansionSynthesisesOwnerAndProof) {
  const Message resp = ask(server_, "anything.wc.example.com", RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  const auto answers = resp.answers_of_type(RrType::kA);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].name.equals(
      Name::must_parse("anything.wc.example.com")));

  // The RRSIG's labels field reveals wildcard synthesis (2 < 4 owner labels
  // ... wildcard is *.wc.example.com → labels = 3).
  bool found_sig = false;
  for (const auto& rr : resp.answers) {
    if (rr.type != RrType::kRrsig) continue;
    const auto sig = rr.as<dns::RrsigRdata>();
    ASSERT_TRUE(sig);
    EXPECT_EQ(sig->labels, 3);
    EXPECT_LT(sig->labels,
              Name::must_parse("anything.wc.example.com").label_count());
    found_sig = true;
  }
  EXPECT_TRUE(found_sig);
  // And the next-closer name must be proven nonexistent.
  EXPECT_EQ(resp.authorities_of_type(RrType::kNsec3).size(), 1u);
}

TEST_F(ServerTest, WildcardNodataProof) {
  const Message resp = ask(server_, "anything.wc.example.com", RrType::kTxt);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answers.empty());
  // match(CE=wc.example.com) + cover(next closer) + match(*.wc.example.com).
  EXPECT_EQ(resp.authorities_of_type(RrType::kNsec3).size(), 3u);
}

TEST_F(ServerTest, SecureReferralCarriesDs) {
  const Message resp = ask(server_, "host.secure.example.com", RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_FALSE(resp.header.aa);
  EXPECT_TRUE(resp.answers.empty());
  EXPECT_GE(count_type(resp.authorities, RrType::kNs), 1u);
  EXPECT_EQ(count_type(resp.authorities, RrType::kDs), 1u);
  EXPECT_GE(count_type(resp.authorities, RrType::kRrsig), 1u);
  // Glue for the in-zone name server.
  EXPECT_EQ(count_type(resp.additionals, RrType::kA), 1u);
}

TEST_F(ServerTest, InsecureReferralProvesNoDs) {
  const Message resp = ask(server_, "host.insecure.example.com", RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_EQ(count_type(resp.authorities, RrType::kDs), 0u);
  // NSEC3 matching the cut proving DS absent.
  const auto nsec3s = resp.authorities_of_type(RrType::kNsec3);
  ASSERT_GE(nsec3s.size(), 1u);
  const auto rd = nsec3s[0].as<dns::Nsec3Rdata>();
  ASSERT_TRUE(rd);
  EXPECT_TRUE(rd->types.contains(RrType::kNs));
  EXPECT_FALSE(rd->types.contains(RrType::kDs));
}

TEST_F(ServerTest, DsQueryAtDelegationAnsweredByParent) {
  const Message resp = ask(server_, "secure.example.com", RrType::kDs);
  EXPECT_EQ(resp.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.header.aa);
  EXPECT_EQ(resp.answers_of_type(RrType::kDs).size(), 1u);
}

TEST_F(ServerTest, RefusedOutsideHostedZones) {
  const Message resp = ask(server_, "www.elsewhere.net", RrType::kA);
  EXPECT_EQ(resp.header.rcode, Rcode::kRefused);
  EXPECT_FALSE(resp.header.aa);
}

TEST_F(ServerTest, DnskeyAndNsec3ParamQueriesAnswered) {
  const Message dnskey = ask(server_, "example.com", RrType::kDnskey);
  EXPECT_EQ(dnskey.answers_of_type(RrType::kDnskey).size(), 2u);
  const Message param = ask(server_, "example.com", RrType::kNsec3Param);
  ASSERT_EQ(param.answers_of_type(RrType::kNsec3Param).size(), 1u);
  const auto rd = param.answers_of_type(RrType::kNsec3Param)[0]
                      .as<dns::Nsec3ParamRdata>();
  ASSERT_TRUE(rd);
  EXPECT_EQ(rd->iterations, kIterations);
  EXPECT_EQ(rd->salt.size(), 2u);
}

TEST_F(ServerTest, FormErrOnEmptyQuestion) {
  Message query;
  query.header.id = 9;
  const Message resp =
      server_.handle(query, simnet::IpAddress::v4(198, 51, 100, 1));
  EXPECT_EQ(resp.header.rcode, Rcode::kFormErr);
}

TEST(ServerCname, RedirectsWhenPresent) {
  auto zone = std::make_shared<Zone>(Name::must_parse("example.net"));
  zone->add(dns::make_soa(zone->apex(), 3600,
                          Name::must_parse("ns1.example.net"), 1));
  zone->add(dns::make_ns(zone->apex(), 3600,
                         Name::must_parse("ns1.example.net")));
  dns::CnameRdata cname;
  cname.target = Name::must_parse("target.example.net");
  zone->add(dns::ResourceRecord::make(Name::must_parse("alias.example.net"),
                                      RrType::kCname, 300, cname));
  zone->add(dns::make_a(Name::must_parse("target.example.net"), 300, 192, 0,
                        2, 7));
  zone::SignerConfig config;
  zone::sign_zone(*zone, config);

  AuthoritativeServer server("ns1.example.net");
  server.add_zone(zone);
  const Message resp = ask(server, "alias.example.net", RrType::kA);
  EXPECT_EQ(resp.answers_of_type(RrType::kCname).size(), 1u);
  EXPECT_TRUE(resp.answers_of_type(RrType::kA).empty());
}

TEST(ServerLazy, ProviderMaterialisesAndCaches) {
  AuthoritativeServer server("bulk-ns");
  int materialised = 0;
  server.set_lazy_provider(
      [](const Name& qname) -> std::optional<Name> {
        // Everything under .lazy belongs to a second-level zone.
        const Name suffix = Name::must_parse("lazy");
        if (!qname.is_subdomain_of(suffix) || qname.label_count() < 2)
          return std::nullopt;
        return qname.ancestor_with_labels(2);
      },
      [&materialised](const Name& apex) -> std::shared_ptr<const Zone> {
        ++materialised;
        auto zone = std::make_shared<Zone>(apex);
        zone->add(dns::make_soa(apex, 3600, Name::must_parse("bulk-ns.lazy"),
                                1));
        zone->add(dns::make_ns(apex, 3600, Name::must_parse("bulk-ns.lazy")));
        zone->add(dns::make_a(*apex.prepended("www"), 300, 192, 0, 2, 44));
        zone::SignerConfig config;
        zone::sign_zone(*zone, config);
        return zone;
      },
      /*cache_capacity=*/2);

  EXPECT_EQ(ask(server, "www.alpha.lazy", RrType::kA).header.rcode,
            Rcode::kNoError);
  EXPECT_EQ(ask(server, "www.alpha.lazy", RrType::kA).header.rcode,
            Rcode::kNoError);
  EXPECT_EQ(materialised, 1) << "second hit must come from cache";

  ask(server, "www.beta.lazy", RrType::kA);
  ask(server, "www.gamma.lazy", RrType::kA);  // evicts alpha (capacity 2)
  ask(server, "www.alpha.lazy", RrType::kA);
  EXPECT_EQ(materialised, 4);
  EXPECT_EQ(server.lazy_materialisations(), 4u);

  EXPECT_EQ(ask(server, "www.unrelated.net", RrType::kA).header.rcode,
            Rcode::kRefused);
}

}  // namespace
}  // namespace zh::server
