// Zero-copy view parser tests: MessageView::parse must accept exactly the
// inputs Message::decode accepts and reject with the *same* WireErrc on
// every input it rejects — pinned here over crafted wires, every strict
// prefix, and the full single-bit-flip corpus. CI runs this binary under
// ASan/UBSan, so every parse doubles as a memory-safety probe.
//
// The binary also carries the allocation gate: with the counting
// operator-new hook (bench/bench_alloc.hpp) compiled in, a steady-state
// reset-and-parse loop must perform zero heap allocations.
#define ZH_BENCH_COUNT_ALLOCS
#include "bench/bench_alloc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dns/arena.hpp"
#include "dns/message.hpp"
#include "dns/wire_view.hpp"

namespace zh::dns {
namespace {

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
  return {v.data(), v.size()};
}

/// Same shape as test_wire_hardening's corpus seed: every special-cased
/// rdata decode path (NS/CNAME/MX/SOA decompression) plus EDNS with EDE.
Message rich_response() {
  Message query = Message::make_query(
      0x5157, Name::must_parse("www.example.com"), RrType::kA);
  Message response = Message::make_response(query);
  response.header.aa = true;
  response.header.ra = true;
  response.answers.push_back(
      make_a(Name::must_parse("www.example.com"), 300, 192, 0, 2, 1));
  response.answers.push_back(make_txt(Name::must_parse("www.example.com"), 300,
                                      "view corpus"));
  response.authorities.push_back(make_ns(Name::must_parse("example.com"), 3600,
                                         Name::must_parse("ns1.example.com")));
  response.authorities.push_back(
      make_soa(Name::must_parse("example.com"), 3600,
               Name::must_parse("ns1.example.com"), 2024010100));
  response.additionals.push_back(
      make_a(Name::must_parse("ns1.example.com"), 3600, 192, 0, 2, 53));
  response.edns->add_ede(EdeCode::kOther, "corpus");
  return response;
}

/// NXDOMAIN + NSEC3 proof: the message shape the scan hot path parses
/// millions of times (the reason the view layer exists).
Message nxdomain_with_proof() {
  Message query = Message::make_query(
      1, Name::must_parse("probe.nx.example.com"), RrType::kA);
  Message response = Message::make_response(query);
  response.header.rcode = Rcode::kNxDomain;
  response.header.aa = true;
  response.authorities.push_back(
      make_soa(Name::must_parse("example.com"), 3600,
               Name::must_parse("ns1.example.com"), 1));
  for (int i = 0; i < 3; ++i) {
    Nsec3Rdata nsec3;
    nsec3.iterations = 10;
    nsec3.next_hash.assign(20, static_cast<std::uint8_t>(i * 40 + 7));
    nsec3.types = TypeBitmap({RrType::kA, RrType::kRrsig});
    response.authorities.push_back(ResourceRecord::make(
        Name::must_parse(std::string(32, static_cast<char>('a' + i)) +
                         ".example.com"),
        RrType::kNsec3, 3600, nsec3));
  }
  return response;
}

std::vector<Message> corpus() {
  std::vector<Message> messages;
  messages.push_back(
      Message::make_query(7, Name::must_parse("example.com"), RrType::kA));
  messages.push_back(Message::make_query(
      0xbeef, Name::must_parse("www.example.com"), RrType::kDnskey));
  messages.push_back(rich_response());
  messages.push_back(nxdomain_with_proof());
  return messages;
}

/// Minimal header + question skeleton for the crafted-wire tests.
std::vector<std::uint8_t> header(std::uint16_t qdcount, std::uint16_t ancount,
                                 std::uint16_t nscount, std::uint16_t arcount) {
  std::vector<std::uint8_t> wire = {0x12, 0x34, 0x01, 0x00};
  for (const std::uint16_t count : {qdcount, ancount, nscount, arcount}) {
    wire.push_back(static_cast<std::uint8_t>(count >> 8));
    wire.push_back(static_cast<std::uint8_t>(count));
  }
  return wire;
}

void push_question_tail(std::vector<std::uint8_t>& wire) {
  wire.insert(wire.end(), {0x00, 0x01, 0x00, 0x01});  // QTYPE=A QCLASS=IN
}

/// Both parsers on the same bytes must agree: same accept/reject decision
/// and the same typed error. Returns the errc for crafted-wire asserts.
WireErrc expect_parity(std::span<const std::uint8_t> wire) {
  MonotonicArena arena;
  const ViewDecodeResult view = MessageView::parse(wire, arena);
  const DecodeResult owned = Message::decode(wire);
  EXPECT_EQ(view.view.has_value(), owned.message.has_value());
  EXPECT_EQ(view.error, owned.error);
  if (view.view && owned.message) {
    EXPECT_EQ(view.view->questions.size(), owned.message->questions.size());
    EXPECT_EQ(view.view->answers.size(), owned.message->answers.size());
    EXPECT_EQ(view.view->authorities.size(), owned.message->authorities.size());
    EXPECT_EQ(view.view->additionals.size(), owned.message->additionals.size());
    EXPECT_EQ(view.view->edns.has_value(), owned.message->edns.has_value());
  }
  return view.error;
}

void expect_sections_match(const MessageView& view, const Message& owned) {
  const Header& a = view.header;
  const Header& b = owned.header;
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.qr, b.qr);
  EXPECT_EQ(a.opcode, b.opcode);
  EXPECT_EQ(a.aa, b.aa);
  EXPECT_EQ(a.tc, b.tc);
  EXPECT_EQ(a.rd, b.rd);
  EXPECT_EQ(a.ra, b.ra);
  EXPECT_EQ(a.ad, b.ad);
  EXPECT_EQ(a.cd, b.cd);
  EXPECT_EQ(a.rcode, b.rcode);

  ASSERT_EQ(view.questions.size(), owned.questions.size());
  for (std::size_t i = 0; i < owned.questions.size(); ++i) {
    EXPECT_TRUE(view.questions[i].name.equals(owned.questions[i].name));
    EXPECT_EQ(view.questions[i].name.to_name(), owned.questions[i].name);
    EXPECT_EQ(view.questions[i].type, owned.questions[i].type);
    EXPECT_EQ(view.questions[i].klass, owned.questions[i].klass);
  }

  const auto check_section = [](std::span<const RecordView> views,
                                const std::vector<ResourceRecord>& records) {
    ASSERT_EQ(views.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_TRUE(views[i].name.equals(records[i].name));
      EXPECT_EQ(views[i].type, records[i].type);
      EXPECT_EQ(views[i].klass, records[i].klass);
      EXPECT_EQ(views[i].ttl, records[i].ttl);
      // A view's rdata is the raw on-wire bytes; the owned record stores the
      // normalised (decompressed) form. They coincide exactly for types the
      // codec does not rewrite.
      switch (records[i].type) {
        case RrType::kNs:
        case RrType::kCname:
        case RrType::kSoa:
        case RrType::kMx:
          break;
        default:
          EXPECT_EQ(std::vector<std::uint8_t>(views[i].rdata.begin(),
                                              views[i].rdata.end()),
                    records[i].rdata);
      }
    }
  };
  check_section(view.answers, owned.answers);
  check_section(view.authorities, owned.authorities);
  check_section(view.additionals, owned.additionals);

  ASSERT_EQ(view.edns.has_value(), owned.edns.has_value());
  if (view.edns) {
    EXPECT_EQ(view.edns->udp_payload_size, owned.edns->udp_payload_size);
    EXPECT_EQ(view.edns->version, owned.edns->version);
    EXPECT_EQ(view.edns->do_bit, owned.edns->do_bit);
    const auto view_ede = view.edns->ede();
    const auto owned_ede = owned.edns->ede();
    ASSERT_EQ(view_ede.has_value(), owned_ede.has_value());
    if (view_ede) {
      EXPECT_EQ(view_ede->info_code, owned_ede->info_code);
      EXPECT_EQ(view_ede->extra_text, owned_ede->extra_text);
    }
  }
}

TEST(WireView, ValidMessagesAgreeFieldForField) {
  for (const Message& msg : corpus()) {
    const auto wire = msg.to_wire();
    MonotonicArena arena;
    const ViewDecodeResult view = MessageView::parse(as_span(wire), arena);
    const DecodeResult owned = Message::decode(as_span(wire));
    ASSERT_TRUE(view.view) << to_string(view.error);
    ASSERT_TRUE(owned.message) << to_string(owned.error);
    expect_sections_match(*view.view, *owned.message);
  }
}

TEST(WireView, ToMessageMaterialisesTheDecodedMessage) {
  for (const Message& msg : corpus()) {
    const auto wire = msg.to_wire();
    MonotonicArena arena;
    const ViewDecodeResult view = MessageView::parse(as_span(wire), arena);
    ASSERT_TRUE(view.view);
    EXPECT_EQ(view.view->to_message().to_wire(), wire);
  }
}

TEST(WireView, QuestionAccessor) {
  MonotonicArena arena;
  const auto wire =
      Message::make_query(9, Name::must_parse("a.example.com"), RrType::kNs)
          .to_wire();
  const ViewDecodeResult view = MessageView::parse(as_span(wire), arena);
  ASSERT_TRUE(view.view);
  ASSERT_NE(view.view->question(), nullptr);
  EXPECT_EQ(view.view->question()->type, RrType::kNs);
  EXPECT_TRUE(view.view->question()->name.equals(
      Name::must_parse("A.EXAMPLE.com")));  // case-insensitive
}

TEST(WireView, EveryStrictPrefixAgreesOnTheError) {
  const auto wire = rich_response().to_wire();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const WireErrc errc =
        expect_parity(std::span<const std::uint8_t>(wire.data(), len));
    EXPECT_NE(errc, WireErrc::kOk) << "prefix of length " << len << " parsed";
  }
}

TEST(WireView, SingleBitFlipCorpusAgrees) {
  // The core parity property: on *every* single-bit corruption of the rich
  // response the two parsers take the same decision with the same errc.
  const auto pristine = rich_response().to_wire();
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto wire = pristine;
      wire[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_parity(as_span(wire));
    }
  }
}

TEST(WireView, NxdomainProofBitFlipCorpusAgrees) {
  // Second corpus seed: the NSEC3 proof shape the scanner actually parses.
  const auto pristine = nxdomain_with_proof().to_wire();
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto wire = pristine;
      wire[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_parity(as_span(wire));
    }
  }
}

TEST(WireView, CraftedWiresGetTheSameTypedErrors) {
  {
    auto wire = rich_response().to_wire();
    wire.push_back(0x00);
    EXPECT_EQ(expect_parity(as_span(wire)), WireErrc::kTrailingBytes);
  }
  {
    auto wire = header(1, 0, 0, 0);
    wire.push_back(0xc0);  // pointer to offset 12 = itself
    wire.push_back(0x0c);
    push_question_tail(wire);
    EXPECT_EQ(expect_parity(as_span(wire)), WireErrc::kPointerLoop);
  }
  {
    auto wire = header(1, 0, 0, 0);
    wire.push_back(0x01);  // "a"
    wire.push_back('a');
    wire.push_back(0xc0);  // ping-pong: back to 12, which re-reads this
    wire.push_back(0x0c);
    push_question_tail(wire);
    EXPECT_EQ(expect_parity(as_span(wire)), WireErrc::kPointerLoop);
  }
  {
    auto wire = header(1, 0, 0, 0);
    wire.push_back(0x40 | 0x01);  // reserved label type
    wire.push_back('x');
    wire.push_back(0x00);
    push_question_tail(wire);
    EXPECT_EQ(expect_parity(as_span(wire)), WireErrc::kBadLabelType);
  }
  {
    auto wire = header(1, 0, 0, 0);  // overlong name: 5 * 64 > 255
    for (int label = 0; label < 5; ++label) {
      wire.push_back(63);
      for (int i = 0; i < 63; ++i)
        wire.push_back(static_cast<std::uint8_t>('a' + label));
    }
    wire.push_back(0x00);
    push_question_tail(wire);
    EXPECT_EQ(expect_parity(as_span(wire)), WireErrc::kNameTooLong);
  }
  {
    auto wire = header(5, 0, 0, 0);  // claims five questions, carries none
    EXPECT_EQ(expect_parity(as_span(wire)), WireErrc::kTruncated);
  }
  {
    auto wire = header(0, 0, 1, 0);  // NS rdata shorter than RDLENGTH
    wire.push_back(0x00);
    wire.insert(wire.end(), {0x00, 0x02, 0x00, 0x01});
    wire.insert(wire.end(), {0x00, 0x00, 0x0e, 0x10});
    wire.insert(wire.end(), {0x00, 0x06});
    wire.insert(wire.end(), {0x01, 'a', 0x00});
    wire.insert(wire.end(), {0x00, 0x00, 0x00});
    EXPECT_EQ(expect_parity(as_span(wire)), WireErrc::kBadRdata);
  }
  {
    auto wire = header(0, 0, 0, 1);  // OPT option overrunning its rdata
    wire.push_back(0x00);
    wire.insert(wire.end(), {0x00, 0x29});
    wire.insert(wire.end(), {0x04, 0xd0});
    wire.insert(wire.end(), {0x00, 0x00, 0x00, 0x00});
    wire.insert(wire.end(), {0x00, 0x06});
    wire.insert(wire.end(), {0x00, 0x0f, 0x00, 0x09});
    wire.insert(wire.end(), {0x00, 0x00});
    EXPECT_EQ(expect_parity(as_span(wire)), WireErrc::kBadOpt);
  }
}

TEST(WireView, TruncatedSuffixSweepsNeverCrashAndAgree) {
  const auto pristine = rich_response().to_wire();
  for (std::size_t front = 0; front < pristine.size(); front += 3) {
    for (std::size_t back = 0; back + front < pristine.size(); back += 3) {
      expect_parity(std::span<const std::uint8_t>(
          pristine.data() + front, pristine.size() - front - back));
    }
  }
}

TEST(WireView, NameViewAccessors) {
  MonotonicArena arena;
  const auto wire =
      Message::make_query(3, Name::must_parse("WwW.Example.COM"), RrType::kA)
          .to_wire();
  const ViewDecodeResult view = MessageView::parse(as_span(wire), arena);
  ASSERT_TRUE(view.view);
  const NameView& name = view.view->questions.front().name;
  EXPECT_FALSE(name.is_root());
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.wire_length(), Name::must_parse("www.example.com").wire_length());
  std::vector<std::string> labels;
  name.for_each_label([&](std::string_view label) {
    labels.emplace_back(label);
  });
  // Labels come back in original case; equality is case-insensitive.
  EXPECT_EQ(labels, (std::vector<std::string>{"WwW", "Example", "COM"}));
  EXPECT_TRUE(name.equals(Name::must_parse("www.example.com")));
  EXPECT_FALSE(name.equals(Name::must_parse("www.example.org")));
  EXPECT_FALSE(name.equals(Name::must_parse("example.com")));
  EXPECT_EQ(name.to_name(), Name::must_parse("WwW.Example.COM"));
  EXPECT_EQ(name.to_string(), "WwW.Example.COM.");
}

TEST(WireView, CompressedNamesWalkThroughPointers) {
  // In the rich response the NS rdata name ns1.example.com is emitted with a
  // compression pointer into the question; the owner of the SOA record is a
  // pointer as well. equals/to_name must follow them transparently.
  const auto wire = rich_response().to_wire();
  MonotonicArena arena;
  const ViewDecodeResult view = MessageView::parse(as_span(wire), arena);
  ASSERT_TRUE(view.view);
  ASSERT_GE(view.view->authorities.size(), 2u);
  EXPECT_TRUE(
      view.view->authorities[0].name.equals(Name::must_parse("example.com")));
  EXPECT_EQ(view.view->authorities[1].name.to_string(), "example.com.");
}

TEST(WireView, ArenaConvergesToOneSlabAcrossResets) {
  // Slabs grow geometrically and reset() coalesces spills, so a stable
  // workload must stop allocating slabs after the first few cycles.
  MonotonicArena arena(/*initial_bytes=*/64);  // force early spills
  const auto wire = nxdomain_with_proof().to_wire();
  for (int i = 0; i < 4; ++i) {
    arena.reset();
    ASSERT_TRUE(MessageView::parse(as_span(wire), arena));
  }
  const std::uint64_t warm_slabs = arena.stats().slab_allocations;
  for (int i = 0; i < 1000; ++i) {
    arena.reset();
    ASSERT_TRUE(MessageView::parse(as_span(wire), arena));
  }
  EXPECT_EQ(arena.stats().slab_allocations, warm_slabs);
  EXPECT_GE(arena.stats().resets, 1004u);
  EXPECT_GE(arena.stats().high_water, arena.stats().used);
}

TEST(WireView, ArenaMakeArrayAlignsAndZeroes) {
  MonotonicArena arena;
  EXPECT_TRUE(arena.make_array<std::uint64_t>(0).empty());
  (void)arena.allocate(1, 1);  // misalign the cursor
  const std::span<std::uint64_t> array = arena.make_array<std::uint64_t>(5);
  ASSERT_EQ(array.size(), 5u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(array.data()) %
                alignof(std::uint64_t),
            0u);
  for (const std::uint64_t v : array) EXPECT_EQ(v, 0u);
}

TEST(WireView, SteadyStateParseMakesZeroHeapAllocations) {
  // The allocation gate (CI: alloc-gate job). After one warm parse the
  // reset-and-parse loop must never touch the heap: the arena rewinds a
  // cursor and every view lands in the retained slab.
  const auto wire = nxdomain_with_proof().to_wire();
  MonotonicArena arena;
  ASSERT_TRUE(MessageView::parse(as_span(wire), arena));  // warm-up slab
  const bench::AllocStats before = bench::alloc_stats();
  for (int i = 0; i < 10000; ++i) {
    arena.reset();
    const ViewDecodeResult view = MessageView::parse(as_span(wire), arena);
    if (!view.view) FAIL() << "parse failed mid-loop";
  }
  const bench::AllocStats after = bench::alloc_stats();
  EXPECT_EQ(after.allocations - before.allocations, 0u)
      << "steady-state view parse allocated";
}

TEST(WireView, WireSizeMatchesEncodedSizeExactly) {
  // wire_size() shares the compressor's offset map with write(), so it is
  // exact — the simnet/frontend truncation decision depends on that.
  for (const Message& msg : corpus()) {
    EXPECT_EQ(msg.wire_size(), msg.to_wire().size());
  }
  // And for every bit-flipped message that still decodes (mutated flags,
  // TTLs, rdata bytes — anything that survives the parser).
  const auto pristine = rich_response().to_wire();
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    auto wire = pristine;
    wire[byte] ^= 0x01;
    const DecodeResult result = Message::decode(as_span(wire));
    if (result.message)
      EXPECT_EQ(result.message->wire_size(), result.message->to_wire().size());
  }
}

}  // namespace
}  // namespace zh::dns
