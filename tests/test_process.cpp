// End-to-end tests for multi-process campaign scale-out
// (scanner/process.hpp): K forked worker processes, each running shard
// s-of-K through the normal parallel engine and emitting a serialised
// artefact, must merge back to results *byte-identical* to the serial and
// the in-process --jobs runs.
//
// This binary has a custom main: when spawned with --worker-domain /
// --worker-sweep it acts as a shard worker (the role the bench binaries
// play in production), otherwise it runs the gtest suite. Workers use
// jobs=2 internally, so every K also exercises the process×thread residue
// composition (K procs × 2 threads ≡ one process at --jobs 2K).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/serialize.hpp"
#include "scanner/process.hpp"
#include "scanner/serialize.hpp"
#include "workload/install.hpp"
#include "workload/resolver_population.hpp"

namespace zh::scanner {
namespace {

/// Worker-side thread count: >1 so process sharding composes with thread
/// sharding in every test.
constexpr unsigned kWorkerJobs = 2;

workload::EcosystemSpec test_spec() {
  return workload::EcosystemSpec({.scale = 0.00002, .seed = 42});
}

workload::PanelSpec test_panel() {
  using resolver::ResolverProfile;
  workload::PanelSpec panel;
  panel.panel = workload::Panel::kOpenV4;
  panel.validator_count = 18;
  panel.non_validator_count = 4;
  panel.entries = {
      {ResolverProfile::bind9_2021(), 0.4, ""},
      {ResolverProfile::google_public_dns(), 0.25, ""},
      {ResolverProfile::cloudflare(), 0.2, ""},
      {ResolverProfile::strict_zero(), 0.1, ""},
      {ResolverProfile::item12_gap(), 0.05, ""},
  };
  return panel;
}

ParallelOptions run_options(unsigned jobs, unsigned shard, unsigned of) {
  ParallelOptions options{.jobs = jobs, .base_seed = 42};
  options.shard_index = shard;
  options.shard_count = of;
  return options;
}

ParallelCampaignResult run_domain(unsigned jobs, unsigned shard = 0,
                                  unsigned of = 1) {
  const workload::EcosystemSpec spec = test_spec();
  return run_domain_campaign_parallel(spec, default_world_factory(spec),
                                      run_options(jobs, shard, of));
}

ParallelSweepResult run_sweep(unsigned jobs, unsigned shard = 0,
                              unsigned of = 1) {
  const workload::EcosystemSpec spec = test_spec();
  return run_resolver_sweep_parallel(
      test_panel(), default_world_factory(spec, /*with_domains=*/false),
      "tproc-", 1u << 21, run_options(jobs, shard, of));
}

/// Canonical bytes of a campaign result, normalised to a fixed envelope so
/// serial / --jobs K / K-process results can be compared byte-for-byte.
/// The hash-work tally is zeroed: every worker signs its own world, so
/// cost scales with the worker count by design — it is mode-equal (K
/// processes ≡ --jobs K·J in-process, asserted separately below), not
/// jobs-invariant like the statistics.
std::vector<std::uint8_t> canonical_bytes(
    const ParallelCampaignResult& result) {
  DomainShardArtefact artefact;
  artefact.tag = "canon";
  artefact.shard = 0;
  artefact.of = 1;
  artefact.jobs = 1;  // deliberately NOT result.jobs: jobs must not matter
  artefact.stats = result.stats;
  artefact.records = result.records;
  artefact.queries_issued = result.queries_issued;
  return encode_artefact(artefact);
}

std::vector<std::uint8_t> canonical_bytes(const ParallelSweepResult& result) {
  SweepShardArtefact artefact;
  artefact.tag = "canon";
  artefact.shard = 0;
  artefact.of = 1;
  artefact.jobs = 1;
  artefact.stats = result.stats;
  artefact.queries_issued = result.queries_issued;
  artefact.population = result.population;
  return encode_artefact(artefact);
}

void expect_same_cost(const CostTally& a, const CostTally& b) {
  EXPECT_EQ(a.sha1_blocks, b.sha1_blocks);
  EXPECT_EQ(a.sha2_blocks, b.sha2_blocks);
  EXPECT_EQ(a.nsec3_hashes, b.nsec3_hashes);
}

/// Spawns K workers of this binary and returns their artefact paths.
std::vector<std::string> spawn_workers(const char* role, unsigned procs,
                                       std::string& dir) {
  std::string error;
  dir = make_shard_dir(error);
  EXPECT_FALSE(dir.empty()) << error;
  const std::string base = dir + "/shard";
  EXPECT_TRUE(spawn_shard_workers("/proc/self/exe", {role}, procs, base,
                                  error))
      << error;
  std::vector<std::string> paths;
  for (unsigned shard = 0; shard < procs; ++shard)
    paths.push_back(base + ".s" + std::to_string(shard));
  return paths;
}

void cleanup(const std::vector<std::string>& paths, const std::string& dir) {
  for (const auto& path : paths) std::remove(path.c_str());
  if (!dir.empty()) std::remove(dir.c_str());
}

TEST(ProcessCampaign, KProcessCampaignMatchesInProcess) {
  const ParallelCampaignResult serial = run_domain(1);
  ASSERT_GT(serial.stats.scanned, 0u);
  const std::vector<std::uint8_t> want = canonical_bytes(serial);

  for (const unsigned procs : {1u, 2u, 4u}) {
    SCOPED_TRACE(procs);
    // In-process equivalent of the same global partition.
    const ParallelCampaignResult in_process =
        run_domain(procs * kWorkerJobs);
    EXPECT_EQ(canonical_bytes(in_process), want);

    std::string dir;
    const std::vector<std::string> paths =
        spawn_workers("--worker-domain", procs, dir);
    ParallelCampaignResult merged;
    std::string error;
    ASSERT_TRUE(merge_domain_shards(paths, "t", merged, error)) << error;
    EXPECT_EQ(merged.jobs, procs * kWorkerJobs);
    EXPECT_EQ(canonical_bytes(merged), want);
    // Hash-work cost is per-worker-world, so it matches the in-process run
    // with the same global worker count (not the serial run).
    expect_same_cost(merged.cost, in_process.cost);
    cleanup(paths, dir);
  }
}

TEST(ProcessCampaign, KProcessSweepMatchesInProcess) {
  const ParallelSweepResult serial = run_sweep(1);
  ASSERT_EQ(serial.stats.probed, 22u);
  const std::vector<std::uint8_t> want = canonical_bytes(serial);

  for (const unsigned procs : {1u, 2u, 4u}) {
    SCOPED_TRACE(procs);
    const ParallelSweepResult in_process = run_sweep(procs * kWorkerJobs);
    EXPECT_EQ(canonical_bytes(in_process), want);

    std::string dir;
    const std::vector<std::string> paths =
        spawn_workers("--worker-sweep", procs, dir);
    ParallelSweepResult merged;
    std::string error;
    ASSERT_TRUE(merge_sweep_shards(paths, "t", merged, error)) << error;
    EXPECT_EQ(merged.population, serial.population);
    EXPECT_EQ(canonical_bytes(merged), want);
    expect_same_cost(merged.cost, in_process.cost);
    cleanup(paths, dir);
  }
}

TEST(ProcessCampaign, SubShardOptionsPartitionTheCampaign) {
  // Directly via ParallelOptions (no fork): the 3 sub-shards of a 3-way
  // split, each itself running 2 threads, merge back to the serial run.
  const ParallelCampaignResult serial = run_domain(1);
  DomainCampaignStats merged_stats;
  std::vector<CompactDomainRecord> records;
  std::uint64_t queries = 0;
  for (unsigned shard = 0; shard < 3; ++shard) {
    const ParallelCampaignResult part = run_domain(kWorkerJobs, shard, 3);
    merged_stats.merge(part.stats);
    records.insert(records.end(), part.records.begin(), part.records.end());
    queries += part.queries_issued;
  }
  std::sort(records.begin(), records.end(),
            [](const CompactDomainRecord& a, const CompactDomainRecord& b) {
              return a.index < b.index;
            });
  EXPECT_EQ(merged_stats.scanned, serial.stats.scanned);
  EXPECT_EQ(queries, serial.queries_issued);
  ASSERT_EQ(records.size(), serial.records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i].index, serial.records[i].index) << i;
}

TEST(ProcessCampaign, MergeRejectsIncompleteAndForeignSets) {
  std::string dir;
  const std::vector<std::string> paths =
      spawn_workers("--worker-domain", 2, dir);

  ParallelCampaignResult merged;
  std::string error;
  // Wrong tag: nothing matches.
  EXPECT_FALSE(merge_domain_shards(paths, "other", merged, error));
  EXPECT_NE(error.find("no shard artefact"), std::string::npos) << error;
  // Missing shard: incomplete set.
  EXPECT_FALSE(merge_domain_shards({paths[0]}, "t", merged, error));
  EXPECT_NE(error.find("incomplete"), std::string::npos) << error;
  // Duplicate shard.
  EXPECT_FALSE(
      merge_domain_shards({paths[0], paths[0], paths[1]}, "t", merged, error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  // A corrupted file fails typed, and the merge reports which file.
  {
    auto bytes = *analysis::read_bytes_file(paths[1]);
    bytes[bytes.size() / 2] ^= 0x40;
    ASSERT_TRUE(analysis::write_bytes_file(paths[1], bytes));
    EXPECT_FALSE(merge_domain_shards(paths, "t", merged, error));
    EXPECT_NE(error.find(paths[1]), std::string::npos) << error;
  }
  cleanup(paths, dir);
}

/// Shard-worker role: runs its sub-shard in-process and writes the
/// artefact — the same job a bench binary does under --emit-shard.
int worker_main(int argc, char** argv, bool domain) {
  unsigned shard = 0, of = 1;
  std::string emit;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc)
      shard = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--of") == 0 && i + 1 < argc)
      of = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--emit-shard") == 0 && i + 1 < argc)
      emit = argv[++i];
  }
  if (emit.empty() || of == 0 || shard >= of) return 2;
  const std::string path = emit + ".s" + std::to_string(shard);
  std::vector<std::uint8_t> bytes;
  if (domain) {
    const ParallelCampaignResult result = run_domain(kWorkerJobs, shard, of);
    DomainShardArtefact artefact;
    artefact.tag = "t";
    artefact.shard = shard;
    artefact.of = of;
    artefact.jobs = result.jobs;
    artefact.stats = result.stats;
    artefact.records = result.records;
    artefact.queries_issued = result.queries_issued;
    artefact.cost = result.cost;
    bytes = encode_artefact(artefact);
  } else {
    const ParallelSweepResult result = run_sweep(kWorkerJobs, shard, of);
    SweepShardArtefact artefact;
    artefact.tag = "t";
    artefact.shard = shard;
    artefact.of = of;
    artefact.jobs = result.jobs;
    artefact.stats = result.stats;
    artefact.queries_issued = result.queries_issued;
    artefact.population = result.population;
    artefact.cost = result.cost;
    bytes = encode_artefact(artefact);
  }
  return analysis::write_bytes_file(path, bytes) ? 0 : 1;
}

}  // namespace
}  // namespace zh::scanner

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-domain") == 0)
      return zh::scanner::worker_main(argc, argv, /*domain=*/true);
    if (std::strcmp(argv[i], "--worker-sweep") == 0)
      return zh::scanner::worker_main(argc, argv, /*domain=*/false);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
