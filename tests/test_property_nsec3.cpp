// Property tests on NSEC3 chain invariants and denial-proof completeness:
// for randomly generated zones, the signer's chain must be sorted, circular
// and duplicate-free; the server's proofs must verify for arbitrary
// nonexistent names; and the server↔validator pair must agree end to end.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "dns/dnssec.hpp"
#include "server/auth_server.hpp"
#include "testbed/internet.hpp"
#include "zone/signer.hpp"

namespace zh::zone {
namespace {

using dns::Name;
using dns::RrType;

struct ZoneParams {
  std::uint64_t seed;
  std::uint16_t iterations;
  std::uint8_t salt_len;
  bool opt_out;
};

class Nsec3ChainProperty : public ::testing::TestWithParam<ZoneParams> {
 protected:
  /// Builds a random zone: hosts, empty non-terminal branches, wildcards,
  /// secure + insecure delegations.
  static Zone random_zone(const ZoneParams& params) {
    std::mt19937_64 rng(params.seed);
    Zone zone(Name::must_parse("prop.example"));
    zone.add(dns::make_soa(zone.apex(), 3600,
                           Name::must_parse("ns1.prop.example"), 1));
    zone.add(dns::make_ns(zone.apex(), 3600,
                          Name::must_parse("ns1.prop.example")));
    zone.add(dns::make_a(Name::must_parse("ns1.prop.example"), 3600, 192, 0,
                         2, 53));

    const std::size_t hosts = 3 + rng() % 20;
    for (std::size_t i = 0; i < hosts; ++i) {
      std::string label = "h" + std::to_string(rng() % 1000);
      Name owner = *zone.apex().prepended(label);
      if (rng() % 3 == 0) owner = *owner.prepended("deep");  // makes ENTs
      zone.add(dns::make_a(owner, 300, 10, 0, 0,
                           static_cast<std::uint8_t>(i)));
    }
    if (rng() % 2) {
      zone.add(dns::make_a(
          Name::must_parse("wc.prop.example").wildcard_child(), 300, 10, 9,
          9, 9));
    }
    // Delegations.
    zone.add(dns::make_ns(Name::must_parse("insecure-child.prop.example"),
                          3600, Name::must_parse("ns.elsewhere.net")));
    zone.add(dns::make_ns(Name::must_parse("secure-child.prop.example"),
                          3600, Name::must_parse("ns.elsewhere.net")));
    dns::DsRdata ds;
    ds.key_tag = 7;
    ds.algorithm = 253;
    ds.digest.assign(32, 0x55);
    zone.add(dns::ResourceRecord::make(
        Name::must_parse("secure-child.prop.example"), RrType::kDs, 3600,
        ds));
    return zone;
  }

  static SignerConfig config_for(const ZoneParams& params) {
    SignerConfig config;
    config.nsec3.iterations = params.iterations;
    config.nsec3.salt.assign(params.salt_len, 0x77);
    config.nsec3.opt_out = params.opt_out;
    return config;
  }
};

TEST_P(Nsec3ChainProperty, ChainSortedCircularAndUnique) {
  Zone zone = random_zone(GetParam());
  sign_zone(zone, config_for(GetParam()));

  const auto& entries = zone.nsec3_entries();
  ASSERT_GE(entries.size(), 3u);
  std::set<std::vector<std::uint8_t>> seen;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(seen.insert(entries[i].hash).second) << "duplicate hash";
    if (i > 0) {
      EXPECT_LT(entries[i - 1].hash, entries[i].hash) << "not sorted";
    }
    EXPECT_EQ(entries[i].rdata.next_hash,
              entries[(i + 1) % entries.size()].hash)
        << "chain broken at " << i;
    EXPECT_EQ(entries[i].hash.size(), 20u);
    EXPECT_EQ(entries[i].rdata.iterations, GetParam().iterations);
    EXPECT_EQ(entries[i].rdata.salt.size(), GetParam().salt_len);
    EXPECT_EQ(entries[i].rdata.opt_out(), GetParam().opt_out);
    ASSERT_FALSE(entries[i].rrsigs.empty());
  }
}

TEST_P(Nsec3ChainProperty, EveryExistingNameMatchesOrIsOptedOut) {
  Zone zone = random_zone(GetParam());
  const auto config = config_for(GetParam());
  sign_zone(zone, config);

  zone.for_each_node([&](const Name& name, const ZoneNode& node) {
    if (zone.delegation_for(name) &&
        !zone.delegation_for(name)->equals(name))
      return;  // occluded glue
    const bool insecure_delegation =
        !name.equals(zone.apex()) && node.has(RrType::kNs) &&
        !node.has(RrType::kDs);
    const auto hash = dns::nsec3_hash_name(
        name,
        std::span<const std::uint8_t>(config.nsec3.salt.data(),
                                      config.nsec3.salt.size()),
        config.nsec3.iterations);
    const auto* entry = zone.nsec3_matching(
        std::span<const std::uint8_t>(hash.data(), hash.size()));
    if (config.nsec3.opt_out && insecure_delegation) {
      EXPECT_EQ(entry, nullptr) << name.to_string();
    } else {
      EXPECT_NE(entry, nullptr) << name.to_string();
    }
  });
}

TEST_P(Nsec3ChainProperty, RandomAbsentNamesAreCovered) {
  Zone zone = random_zone(GetParam());
  const auto config = config_for(GetParam());
  sign_zone(zone, config);

  std::mt19937_64 rng(GetParam().seed ^ 0xfeed);
  for (int i = 0; i < 50; ++i) {
    const Name absent =
        *zone.apex().prepended("absent" + std::to_string(rng()));
    if (zone.name_exists(absent)) continue;
    const auto hash = dns::nsec3_hash_name(
        absent,
        std::span<const std::uint8_t>(config.nsec3.salt.data(),
                                      config.nsec3.salt.size()),
        config.nsec3.iterations);
    const std::span<const std::uint8_t> hspan(hash.data(), hash.size());
    // Either covered by an interval or (astronomically unlikely) matching.
    EXPECT_TRUE(zone.nsec3_covering(hspan) != nullptr ||
                zone.nsec3_matching(hspan) != nullptr)
        << absent.to_string();
  }
}

TEST_P(Nsec3ChainProperty, ServerProofsAreSelfConsistent) {
  auto zone = std::make_shared<Zone>(random_zone(GetParam()));
  const auto config = config_for(GetParam());
  sign_zone(*zone, config);

  server::AuthoritativeServer server("prop-ns");
  server.add_zone(zone);

  std::mt19937_64 rng(GetParam().seed ^ 0xbeef);
  for (int i = 0; i < 25; ++i) {
    const Name qname =
        *zone->apex().prepended("nx" + std::to_string(rng()));
    const auto query =
        dns::Message::make_query(1, qname, RrType::kA, /*dnssec_ok=*/true);
    const auto response =
        server.handle(query, simnet::IpAddress::v4(198, 51, 100, 9));
    if (response.header.rcode != dns::Rcode::kNxDomain) continue;

    // Reconstruct the proof exactly as a validator would.
    const auto nsec3s = response.authorities_of_type(RrType::kNsec3);
    ASSERT_GE(nsec3s.size(), 1u);
    const auto qhash = dns::nsec3_hash_name(
        qname,
        std::span<const std::uint8_t>(config.nsec3.salt.data(),
                                      config.nsec3.salt.size()),
        config.nsec3.iterations);
    bool covered = false;
    for (const auto& rr : nsec3s) {
      const auto owner_hash = dns::nsec3_owner_hash(rr.name, zone->apex());
      const auto rdata = rr.as<dns::Nsec3Rdata>();
      ASSERT_TRUE(owner_hash && rdata);
      if (dns::nsec3_covers(
              std::span<const std::uint8_t>(owner_hash->data(),
                                            owner_hash->size()),
              std::span<const std::uint8_t>(rdata->next_hash.data(),
                                            rdata->next_hash.size()),
              std::span<const std::uint8_t>(qhash.data(), qhash.size())))
        covered = true;
    }
    EXPECT_TRUE(covered) << qname.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Nsec3ChainProperty,
    ::testing::Values(ZoneParams{1, 0, 0, false}, ZoneParams{2, 0, 8, false},
                      ZoneParams{3, 1, 8, false}, ZoneParams{4, 5, 0, true},
                      ZoneParams{5, 10, 4, false}, ZoneParams{6, 100, 8, true},
                      ZoneParams{7, 150, 40, false},
                      ZoneParams{8, 500, 16, true},
                      ZoneParams{9, 2500, 0, false},
                      ZoneParams{10, 1, 160, false}),
    [](const ::testing::TestParamInfo<ZoneParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_it" +
             std::to_string(info.param.iterations) + "_salt" +
             std::to_string(info.param.salt_len) +
             (info.param.opt_out ? "_optout" : "");
    });

}  // namespace
}  // namespace zh::zone
