// Unit tests for the simulated network: addressing, routing, loss,
// server-side query logging (the paper's forwarder-detection mechanism).
#include <gtest/gtest.h>

#include <vector>

#include "simnet/address.hpp"
#include "simnet/batch.hpp"
#include "simnet/network.hpp"
#include "simtime/latency.hpp"

namespace zh::simnet {
namespace {

using dns::Message;
using dns::Name;
using dns::RrType;

TEST(IpAddress, V4Formatting) {
  EXPECT_EQ(IpAddress::v4(1, 1, 1, 1).to_string(), "1.1.1.1");
  EXPECT_EQ(IpAddress::v4(198, 41, 0, 4).to_string(), "198.41.0.4");
}

TEST(IpAddress, V6Formatting) {
  const auto addr = IpAddress::v6({0x2001, 0xdb8, 0, 0, 0, 0, 0, 1});
  EXPECT_EQ(addr.to_string(), "2001:db8:0:0:0:0:0:1");
  EXPECT_TRUE(addr.is_v6());
}

TEST(IpAddress, EqualityAndHash) {
  const auto a = IpAddress::v4(10, 0, 0, 1);
  const auto b = IpAddress::v4(10, 0, 0, 1);
  const auto c = IpAddress::v4(10, 0, 0, 2);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  // v4 and v6 with the same leading bytes differ.
  const auto v6 = IpAddress::v6({0x0a00, 0x0001, 0, 0, 0, 0, 0, 0});
  EXPECT_FALSE(a == v6);
}

TEST(IpAddress, FromIndexIsUnique) {
  std::set<std::string> seen;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(IpAddress::from_index(false, i).to_string()).second);
    EXPECT_TRUE(seen.insert(IpAddress::from_index(true, i).to_string()).second);
  }
}

TEST(IpAddress, FromBytesRoundTrip) {
  const std::uint8_t v4_bytes[4] = {192, 0, 2, 7};
  EXPECT_EQ(IpAddress::from_bytes(false, v4_bytes).to_string(), "192.0.2.7");
}

TEST(Network, RoutesToAttachedNode) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  const auto client = IpAddress::v4(203, 0, 113, 1);
  network.attach(server, [](const Message& query, const IpAddress&) {
    Message response = Message::make_response(query);
    response.header.rcode = dns::Rcode::kNoError;
    return std::optional<Message>(response);
  });

  const Message query =
      Message::make_query(7, Name::must_parse("example.com"), RrType::kA);
  const auto response = network.send(client, server, query);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->header.id, 7);
  EXPECT_TRUE(response->header.qr);
  EXPECT_EQ(network.queries_sent(), 1u);
}

TEST(Network, UnreachableDestination) {
  Network network;
  const Message query =
      Message::make_query(7, Name::must_parse("example.com"), RrType::kA);
  EXPECT_FALSE(network.send(IpAddress::v4(1, 2, 3, 4),
                            IpAddress::v4(5, 6, 7, 8), query));
}

TEST(Network, DetachStopsRouting) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  });
  EXPECT_TRUE(network.is_attached(server));
  network.detach(server);
  EXPECT_FALSE(network.is_attached(server));
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  EXPECT_FALSE(network.send(IpAddress::v4(1, 1, 1, 1), server, query));
}

TEST(Network, LossDropsDeterministically) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  });
  network.set_loss(0.5, /*seed=*/42);
  int delivered = 0;
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  for (int i = 0; i < 1000; ++i) {
    if (network.send(IpAddress::v4(1, 1, 1, 1), server, query)) ++delivered;
  }
  EXPECT_GT(delivered, 400);
  EXPECT_LT(delivered, 600);

  // Same seed → same delivery pattern.
  Network network2;
  network2.attach(server, [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  });
  network2.set_loss(0.5, 42);
  int delivered2 = 0;
  for (int i = 0; i < 1000; ++i) {
    if (network2.send(IpAddress::v4(1, 1, 1, 1), server, query)) ++delivered2;
  }
  EXPECT_EQ(delivered, delivered2);
}

TEST(Network, LossSeedSelectsTheDroppedSubset) {
  const auto server = IpAddress::v4(192, 0, 2, 1);
  const auto handler = [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  };
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  // The per-send fate pattern is a function of the seed: two seeds must
  // disagree somewhere in 200 draws (P(identical) = 2^-200 at loss 0.5).
  const auto fates = [&](std::uint64_t seed) {
    Network network;
    network.attach(server, handler);
    network.set_loss(0.5, seed);
    std::vector<bool> delivered;
    for (int i = 0; i < 200; ++i) {
      delivered.push_back(
          network.send(IpAddress::v4(1, 1, 1, 1), server, query).has_value());
    }
    return delivered;
  };
  EXPECT_EQ(fates(42), fates(42));
  EXPECT_NE(fates(42), fates(43));
}

TEST(Network, ClearingLossRestoresPerfectDelivery) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  });
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  network.set_loss(1.0, 42);
  EXPECT_FALSE(network.send(IpAddress::v4(1, 1, 1, 1), server, query));
  network.set_loss(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(network.send(IpAddress::v4(1, 1, 1, 1), server, query));
  }
}

TEST(Network, TcpIsExemptFromUdpLoss) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  });
  network.set_loss(1.0, 42);
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  EXPECT_FALSE(network.send(IpAddress::v4(1, 1, 1, 1), server, query));
  // TCP models a reliable stream: it must get through under total UDP loss.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(network.send_tcp(IpAddress::v4(1, 1, 1, 1), server, query));
  }
}

TEST(Network, FlowKeyedLossIsIndependentOfOtherTraffic) {
  const auto server = IpAddress::v4(192, 0, 2, 1);
  const auto handler = [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  };
  const Message query =
      Message::make_query(1, Name::must_parse("example.com"), RrType::kA);
  // Flow 7's fate pattern must not depend on how much traffic *other*
  // flows sent first — the property sharded campaigns rely on.
  const auto flow7_fates = [&](int other_traffic) {
    Network network;
    network.attach(server, handler);
    network.set_loss(0.5, 42);
    network.set_flow(99);
    for (int i = 0; i < other_traffic; ++i) {
      (void)network.send(IpAddress::v4(1, 1, 1, 1), server, query);
    }
    network.set_flow(7);
    std::vector<bool> delivered;
    for (int i = 0; i < 100; ++i) {
      delivered.push_back(
          network.send(IpAddress::v4(1, 1, 1, 1), server, query).has_value());
    }
    return delivered;
  };
  EXPECT_EQ(flow7_fates(0), flow7_fates(137));
}

TEST(Network, ServerSideLoggingRecordsSources) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  const auto forwarder = IpAddress::v4(203, 0, 113, 9);
  network.attach(server, [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  });
  network.enable_logging_for(server);

  const Message query =
      Message::make_query(1, Name::must_parse("probe.example.com"), RrType::kA);
  network.send(forwarder, server, query);
  ASSERT_EQ(network.query_log().size(), 1u);
  EXPECT_EQ(network.query_log()[0].source, forwarder);
  EXPECT_TRUE(network.query_log()[0].question.name.equals(
      Name::must_parse("probe.example.com")));

  network.clear_query_log();
  EXPECT_TRUE(network.query_log().empty());
}

TEST(Network, LoggingOnlyForEnabledDestinations) {
  Network network;
  const auto a = IpAddress::v4(192, 0, 2, 1);
  const auto b = IpAddress::v4(192, 0, 2, 2);
  const auto handler = [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  };
  network.attach(a, handler);
  network.attach(b, handler);
  network.enable_logging_for(a);
  const Message query =
      Message::make_query(1, Name::must_parse("x.example"), RrType::kA);
  network.send(IpAddress::v4(9, 9, 9, 9), a, query);
  network.send(IpAddress::v4(9, 9, 9, 9), b, query);
  EXPECT_EQ(network.query_log().size(), 1u);
}


TEST(NetworkTransport, OversizeUdpResponseTruncated) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, [](const Message& q, const IpAddress&) {
    Message response = Message::make_response(q);
    // Stuff the answer well past any UDP budget.
    for (int i = 0; i < 60; ++i) {
      response.answers.push_back(dns::make_txt(
          q.questions.front().name, 60, std::string(100, 'x')));
    }
    return std::optional<Message>(response);
  });

  Message query = Message::make_query(
      5, Name::must_parse("big.example"), RrType::kTxt);
  query.edns->udp_payload_size = 1232;
  const auto udp = network.send(IpAddress::v4(9, 9, 9, 9), server, query);
  ASSERT_TRUE(udp);
  EXPECT_TRUE(udp->header.tc);
  EXPECT_TRUE(udp->answers.empty());
  EXPECT_EQ(network.truncations(), 1u);

  const auto tcp = network.send_tcp(IpAddress::v4(9, 9, 9, 9), server, query);
  ASSERT_TRUE(tcp);
  EXPECT_FALSE(tcp->header.tc);
  EXPECT_EQ(tcp->answers.size(), 60u);
  EXPECT_EQ(network.tcp_queries(), 1u);
}

TEST(NetworkTransport, SmallResponsesStayOnUdp) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, [](const Message& q, const IpAddress&) {
    Message response = Message::make_response(q);
    response.answers.push_back(
        dns::make_a(q.questions.front().name, 60, 1, 2, 3, 4));
    return std::optional<Message>(response);
  });
  const Message query = Message::make_query(
      5, Name::must_parse("small.example"), RrType::kA);
  const auto response = network.send(IpAddress::v4(9, 9, 9, 9), server, query);
  ASSERT_TRUE(response);
  EXPECT_FALSE(response->header.tc);
  EXPECT_EQ(network.truncations(), 0u);
}

TEST(NetworkTransport, NonEdnsClientsGet512ByteBudget) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  network.attach(server, [](const Message& q, const IpAddress&) {
    Message response = Message::make_response(q);
    for (int i = 0; i < 8; ++i) {
      response.answers.push_back(dns::make_txt(
          q.questions.front().name, 60, std::string(90, 'y')));
    }
    return std::optional<Message>(response);
  });
  Message query = Message::make_query(
      5, Name::must_parse("legacy.example"), RrType::kTxt);
  query.edns.reset();  // pre-EDNS client: 512-byte limit applies
  const auto response = network.send(IpAddress::v4(9, 9, 9, 9), server, query);
  ASSERT_TRUE(response);
  EXPECT_TRUE(response->header.tc);
}

// The truncation decision now asks wire_size() instead of serialising and
// measuring; this pins the cutover at the exact 512-byte boundary and the
// truncated response's wire bytes — neither may change.
TEST(NetworkTransport, TruncationBoundaryAndWireBytesUnchanged) {
  Network network;
  const auto server = IpAddress::v4(192, 0, 2, 1);
  const Name qname = Name::must_parse("edge.example");

  // Calibrate TXT payloads so the full response encodes to exactly the
  // 512-byte non-EDNS budget (one extra byte then tips it over). A TXT
  // character-string caps at 255 bytes, so grow with fixed-size records
  // until the budget is within one final record's reach.
  Message query = Message::make_query(5, qname, RrType::kTxt);
  query.edns.reset();
  Message base = Message::make_response(query);
  base.header.aa = true;
  std::size_t floor = 0;  // size with an empty final record appended
  for (;;) {
    Message probe = base;
    probe.answers.push_back(dns::make_txt(qname, 60, ""));
    floor = probe.to_wire().size();
    if (floor + 254 >= 512) break;
    base.answers.push_back(dns::make_txt(qname, 60, std::string(100, 'x')));
  }
  ASSERT_LE(floor, 512u);

  for (const std::size_t extra : {std::size_t{0}, std::size_t{1}}) {
    Message response = base;
    response.answers.push_back(
        dns::make_txt(qname, 60, std::string(512 + extra - floor, 'x')));
    // The decision input equals the serialised size, always.
    ASSERT_EQ(response.wire_size(), response.to_wire().size());
    ASSERT_EQ(response.wire_size(), 512 + extra);
    network.attach(server, [&response](const Message&, const IpAddress&) {
      return std::optional<Message>(response);
    });

    const auto got = network.send(IpAddress::v4(9, 9, 9, 9), server, query);
    ASSERT_TRUE(got);
    if (extra == 0) {
      // Exactly at budget: delivered whole, bit for bit.
      EXPECT_FALSE(got->header.tc);
      EXPECT_EQ(got->to_wire(), response.to_wire());
      EXPECT_EQ(network.truncations(), 0u);
    } else {
      // One byte over: TC skeleton with the handler's rcode/aa preserved.
      Message expected = Message::make_response(query);
      expected.header.rcode = response.header.rcode;
      expected.header.aa = response.header.aa;
      expected.header.tc = true;
      EXPECT_TRUE(got->header.tc);
      EXPECT_TRUE(got->answers.empty());
      EXPECT_EQ(got->to_wire(), expected.to_wire());
      EXPECT_EQ(network.truncations(), 1u);
    }
  }
}

// Stress/property test at the async engine's scale target: 8k staggered
// in-flight queries multiplexed over one network with loss, jitter and
// retransmission must never reorder each other's flow-keyed RNG draws.
// Every client's transport fate — which attempts are lost, the sampled
// RTTs, whether it times out — must equal a run of that client ALONE, and
// the whole batch must replay bit-identically. This is the transport
// property the async scan engine's byte-equivalence rests on.
TEST(NetworkBatch, EightThousandInFlightQueriesKeepFlowDrawsOrdered) {
  constexpr std::size_t kClients = 8000;
  const auto server = IpAddress::v4(192, 0, 2, 9);
  const auto echo = [](const Message& q, const IpAddress&) {
    return std::optional<Message>(Message::make_response(q));
  };
  // Loss 0.3 with 4 attempts: retransmission is everywhere (~30 % of
  // attempts) and ~0.8 % of exchanges exhaust the budget, so the timeout
  // path is exercised too.
  const auto shape = [&](Network& network) {
    network.attach(server, echo);
    network.set_loss(0.3, /*seed=*/77);
    network.set_latency_model(simtime::LatencyModel(
        simtime::Duration::from_ms(20), simtime::Duration::from_ms(5),
        /*seed=*/42));
  };
  simtime::RetryPolicy retry;
  retry.attempts = 4;

  std::vector<BatchClient> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    BatchClient client;
    client.source = IpAddress::from_index(false, static_cast<std::uint32_t>(i));
    client.query = Message::make_query(
        static_cast<std::uint16_t>(i + 1),
        *Name::must_parse("stress.example")
             .prepended("c" + std::to_string(i)),
        RrType::kA);
    client.flow = 0x5000 + i;
    // Staggered arrivals: 50 µs spacing keeps thousands genuinely in
    // flight at once under a ~20 ms RTT.
    client.offset = simtime::Duration::from_us(static_cast<std::int64_t>(i) *
                                               50);
    clients.push_back(std::move(client));
  }

  Network batch_net;
  shape(batch_net);
  const BatchResult batch = concurrent_exchange(batch_net, server, clients,
                                                retry);
  ASSERT_EQ(batch.outcomes.size(), kClients);

  // The shaped transport genuinely bites: retransmissions happened, a few
  // exchanges timed out, most were answered.
  std::size_t retransmitted = 0, timed_out = 0, answered = 0;
  for (const ExchangeOutcome& outcome : batch.outcomes) {
    if (outcome.attempts > 1) ++retransmitted;
    if (outcome.timed_out) ++timed_out;
    if (outcome.response) ++answered;
  }
  EXPECT_GT(retransmitted, kClients / 10);
  EXPECT_GT(timed_out, 0u);
  EXPECT_GT(answered, kClients * 9 / 10);

  // Property 1: the batch replays bit-identically.
  Network replay_net;
  shape(replay_net);
  const BatchResult replay = concurrent_exchange(replay_net, server, clients,
                                                 retry);
  for (std::size_t i = 0; i < kClients; ++i) {
    EXPECT_EQ(batch.outcomes[i].attempts, replay.outcomes[i].attempts) << i;
    EXPECT_EQ(batch.outcomes[i].timed_out, replay.outcomes[i].timed_out) << i;
    EXPECT_EQ(batch.outcomes[i].elapsed.nanos(),
              replay.outcomes[i].elapsed.nanos())
        << i;
    EXPECT_EQ(batch.outcomes[i].response.has_value(),
              replay.outcomes[i].response.has_value())
        << i;
  }
  EXPECT_EQ(batch.makespan.nanos(), replay.makespan.nanos());

  // Property 2: no client's draws depend on the other 7999 — running the
  // clients solo, in REVERSE order, reproduces every batch outcome. (Each
  // solo exchange restarts its flow at sequence zero exactly as the batch
  // did, so any cross-flow draw leakage would surface as a mismatch.)
  Network solo_net;
  shape(solo_net);
  const simtime::Duration epoch = solo_net.clock().now();
  for (std::size_t r = 0; r < kClients; ++r) {
    const std::size_t i = kClients - 1 - r;
    solo_net.clock().set(epoch + clients[i].offset);
    solo_net.set_flow(clients[i].flow);
    const ExchangeOutcome solo = exchange(solo_net, clients[i].source, server,
                                          clients[i].query, retry);
    ASSERT_EQ(solo.attempts, batch.outcomes[i].attempts) << i;
    ASSERT_EQ(solo.timed_out, batch.outcomes[i].timed_out) << i;
    ASSERT_EQ(solo.elapsed.nanos(), batch.outcomes[i].elapsed.nanos()) << i;
    ASSERT_EQ(solo.response.has_value(), batch.outcomes[i].response.has_value())
        << i;
  }
}

}  // namespace
}  // namespace zh::simnet
