// Unit tests for typed RDATA encode/decode and the type bitmap.
#include <gtest/gtest.h>

#include "dns/rdata.hpp"
#include "dns/rr.hpp"
#include "dns/type_bitmap.hpp"

namespace zh::dns {
namespace {

template <typename T>
std::optional<T> round_trip(const T& value) {
  const RdataBytes wire = value.encode();
  return T::decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
}

TEST(TypeBitmap, EncodeSmallSet) {
  TypeBitmap bitmap({RrType::kA, RrType::kNs, RrType::kSoa, RrType::kRrsig});
  const auto wire = bitmap.encode();
  const auto decoded = TypeBitmap::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, bitmap);
  EXPECT_TRUE(decoded->contains(RrType::kRrsig));
  EXPECT_FALSE(decoded->contains(RrType::kTxt));
}

TEST(TypeBitmap, EmptyBitmapEncodesToNothing) {
  TypeBitmap bitmap;
  EXPECT_TRUE(bitmap.encode().empty());
  const auto decoded = TypeBitmap::decode({});
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->empty());
}

TEST(TypeBitmap, MultipleWindows) {
  TypeBitmap bitmap;
  bitmap.insert(RrType::kA);                          // window 0
  bitmap.insert(static_cast<RrType>(256));            // window 1
  bitmap.insert(static_cast<RrType>(770));            // window 3
  const auto wire = bitmap.encode();
  const auto decoded = TypeBitmap::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, bitmap);
}

TEST(TypeBitmap, DecodeRejectsOutOfOrderWindows) {
  // Window 1 then window 0.
  const std::vector<std::uint8_t> wire = {1, 1, 0x80, 0, 1, 0x40};
  EXPECT_FALSE(TypeBitmap::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(TypeBitmap, DecodeRejectsZeroLengthWindow) {
  const std::vector<std::uint8_t> wire = {0, 0};
  EXPECT_FALSE(TypeBitmap::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(TypeBitmap, DecodeRejectsTruncatedWindow) {
  const std::vector<std::uint8_t> wire = {0, 4, 0x40};
  EXPECT_FALSE(TypeBitmap::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(TypeBitmap, ToStringUsesMnemonics) {
  TypeBitmap bitmap({RrType::kA, RrType::kNsec3});
  EXPECT_EQ(bitmap.to_string(), "A NSEC3");
}

TEST(Rdata, ARoundTrip) {
  ARdata a;
  a.address = {192, 0, 2, 1};
  const auto back = round_trip(a);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->address, a.address);
  EXPECT_EQ(back->to_string(), "192.0.2.1");
}

TEST(Rdata, ADecodeRejectsWrongLength) {
  const std::vector<std::uint8_t> wire = {1, 2, 3};
  EXPECT_FALSE(
      ARdata::decode(std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(Rdata, AaaaRoundTrip) {
  AaaaRdata a;
  a.address = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  const auto back = round_trip(a);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->address, a.address);
  EXPECT_EQ(back->to_string(), "2001:db8:0:0:0:0:0:1");
}

TEST(Rdata, SoaRoundTrip) {
  SoaRdata soa;
  soa.mname = Name::must_parse("ns1.example.com");
  soa.rname = Name::must_parse("hostmaster.example.com");
  soa.serial = 2024031501;
  const auto back = round_trip(soa);
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->mname.equals(soa.mname));
  EXPECT_TRUE(back->rname.equals(soa.rname));
  EXPECT_EQ(back->serial, soa.serial);
  EXPECT_EQ(back->minimum, soa.minimum);
}

TEST(Rdata, SoaDecodeRejectsTruncation) {
  SoaRdata soa;
  soa.mname = Name::must_parse("ns1.example.com");
  soa.rname = Name::must_parse("hostmaster.example.com");
  auto wire = soa.encode();
  wire.pop_back();
  EXPECT_FALSE(SoaRdata::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(Rdata, TxtRoundTripMultipleStrings) {
  TxtRdata txt;
  txt.strings = {"hello", "", "world"};
  const auto back = round_trip(txt);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->strings, txt.strings);
}

TEST(Rdata, MxRoundTrip) {
  MxRdata mx;
  mx.preference = 10;
  mx.exchange = Name::must_parse("mail.example.com");
  const auto back = round_trip(mx);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->preference, 10);
  EXPECT_TRUE(back->exchange.equals(mx.exchange));
}

TEST(Rdata, DnskeyRoundTripAndFlags) {
  DnskeyRdata key;
  key.flags = DnskeyRdata::kFlagZoneKey | DnskeyRdata::kFlagSep;
  key.algorithm = 253;
  key.public_key.assign(32, 0x42);
  const auto back = round_trip(key);
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->is_zone_key());
  EXPECT_TRUE(back->is_sep());
  EXPECT_EQ(back->public_key, key.public_key);
  EXPECT_EQ(back->key_tag(), key.key_tag());
}

TEST(Rdata, DnskeyKeyTagIsStable) {
  DnskeyRdata key;
  key.flags = DnskeyRdata::kFlagZoneKey;
  key.algorithm = 253;
  key.public_key.assign(32, 0x01);
  const std::uint16_t tag = key.key_tag();
  EXPECT_EQ(key.key_tag(), tag);
  key.public_key[0] = 0x02;
  EXPECT_NE(key.key_tag(), tag);
}

TEST(Rdata, RrsigRoundTrip) {
  RrsigRdata sig;
  sig.type_covered = static_cast<std::uint16_t>(RrType::kA);
  sig.algorithm = 253;
  sig.labels = 2;
  sig.original_ttl = 3600;
  sig.expiration = 1800000000;
  sig.inception = 1700000000;
  sig.key_tag = 12345;
  sig.signer = Name::must_parse("example.com");
  sig.signature.assign(32, 0x5a);
  const auto back = round_trip(sig);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->covered(), RrType::kA);
  EXPECT_EQ(back->labels, 2);
  EXPECT_EQ(back->expiration, sig.expiration);
  EXPECT_TRUE(back->signer.equals(sig.signer));
  EXPECT_EQ(back->signature, sig.signature);
}

TEST(Rdata, RrsigPresignatureOmitsSignature) {
  RrsigRdata sig;
  sig.signer = Name::must_parse("example.com");
  sig.signature.assign(32, 0x5a);
  EXPECT_EQ(sig.encode_presignature().size() + 32, sig.encode().size());
}

TEST(Rdata, DsRoundTrip) {
  DsRdata ds;
  ds.key_tag = 4711;
  ds.algorithm = 253;
  ds.digest_type = DsRdata::kDigestSha256;
  ds.digest.assign(32, 0x99);
  const auto back = round_trip(ds);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->key_tag, 4711);
  EXPECT_EQ(back->digest, ds.digest);
}

TEST(Rdata, DsDecodeRejectsEmptyDigest) {
  const std::vector<std::uint8_t> wire = {0x12, 0x34, 253, 2};
  EXPECT_FALSE(DsRdata::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(Rdata, NsecRoundTrip) {
  NsecRdata nsec;
  nsec.next_domain = Name::must_parse("b.example.com");
  nsec.types = TypeBitmap({RrType::kA, RrType::kRrsig, RrType::kNsec});
  const auto back = round_trip(nsec);
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->next_domain.equals(nsec.next_domain));
  EXPECT_EQ(back->types, nsec.types);
}

TEST(Rdata, Nsec3RoundTripWithSaltAndOptOut) {
  Nsec3Rdata nsec3;
  nsec3.hash_algorithm = 1;
  nsec3.flags = Nsec3Rdata::kFlagOptOut;
  nsec3.iterations = 100;  // the Identity Digital pre-2024 setting
  nsec3.salt = {0xaa, 0xbb, 0xcc, 0xdd};
  nsec3.next_hash.assign(20, 0x77);
  nsec3.types = TypeBitmap({RrType::kNs, RrType::kDs, RrType::kRrsig});
  const auto back = round_trip(nsec3);
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->opt_out());
  EXPECT_EQ(back->iterations, 100);
  EXPECT_EQ(back->salt, nsec3.salt);
  EXPECT_EQ(back->next_hash, nsec3.next_hash);
  EXPECT_EQ(back->types, nsec3.types);
}

TEST(Rdata, Nsec3ZeroSaltRoundTrip) {
  Nsec3Rdata nsec3;
  nsec3.next_hash.assign(20, 0x01);
  const auto back = round_trip(nsec3);
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->salt.empty());
  EXPECT_EQ(back->iterations, 0);
  EXPECT_FALSE(back->opt_out());
}

TEST(Rdata, Nsec3DecodeRejectsTruncatedSalt) {
  const std::vector<std::uint8_t> wire = {1, 0, 0, 0, 8, 0xaa};
  EXPECT_FALSE(Nsec3Rdata::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(Rdata, Nsec3ParamRoundTrip) {
  Nsec3ParamRdata param;
  param.iterations = 1;
  param.salt = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  const auto back = round_trip(param);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->iterations, 1);
  EXPECT_EQ(back->salt.size(), 8u);  // the Google Domains 1/8 setting
}

TEST(Rdata, Nsec3ParamRejectsTrailingBytes) {
  Nsec3ParamRdata param;
  auto wire = param.encode();
  wire.push_back(0);
  EXPECT_FALSE(Nsec3ParamRdata::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size())));
}

TEST(RrSet, GroupCollectsMatchingRecords) {
  const Name owner = Name::must_parse("example.com");
  std::vector<ResourceRecord> records;
  records.push_back(make_a(owner, 300, 192, 0, 2, 1));
  records.push_back(make_a(owner, 600, 192, 0, 2, 2));
  records.push_back(make_ns(owner, 300, Name::must_parse("ns1.example.com")));

  const auto sets = RrSet::group(records);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].type, RrType::kA);
  EXPECT_EQ(sets[0].size(), 2u);
  EXPECT_EQ(sets[0].ttl, 300u);  // min TTL wins
  EXPECT_EQ(sets[1].type, RrType::kNs);
}

TEST(RrSet, ToRecordsExpands) {
  RrSet set;
  set.name = Name::must_parse("example.com");
  set.type = RrType::kA;
  set.ttl = 60;
  set.rdatas = {ARdata{{1, 2, 3, 4}}.encode(), ARdata{{5, 6, 7, 8}}.encode()};
  const auto records = set.to_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].ttl, 60u);
  EXPECT_EQ(records[1].as<ARdata>()->to_string(), "5.6.7.8");
}

TEST(ResourceRecord, ToStringNsec3Param) {
  Nsec3ParamRdata param;
  param.iterations = 5;
  param.salt = {0xab, 0xcd};
  const auto rr = ResourceRecord::make(Name::must_parse("example.com"),
                                       RrType::kNsec3Param, 0, param);
  EXPECT_EQ(rr.to_string(), "example.com. 0 IN NSEC3PARAM 1 0 5 abcd");
}

}  // namespace
}  // namespace zh::dns
