// Hardened-decode tests: Message::decode on untrusted bytes must never
// crash, never read out of bounds, and must say *why* it rejected input
// (typed WireErrc). CI runs this binary under ASan/UBSan, so every decode
// here doubles as a memory-safety probe; the same corpus is fired at a
// live frontend socket in test_frontend.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "dns/message.hpp"

namespace zh::dns {
namespace {

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
  return {v.data(), v.size()};
}

/// A response exercising every rdata decode path the codec special-cases
/// (NS/CNAME/MX/SOA decompression) plus EDNS with an EDE option.
Message rich_response() {
  Message query = Message::make_query(
      0x5157, Name::must_parse("www.example.com"), RrType::kA);
  Message response = Message::make_response(query);
  response.header.aa = true;
  response.header.ra = true;
  response.answers.push_back(
      make_a(Name::must_parse("www.example.com"), 300, 192, 0, 2, 1));
  response.answers.push_back(make_txt(Name::must_parse("www.example.com"), 300,
                                      "hardening corpus"));
  response.authorities.push_back(make_ns(Name::must_parse("example.com"), 3600,
                                         Name::must_parse("ns1.example.com")));
  response.authorities.push_back(
      make_soa(Name::must_parse("example.com"), 3600,
               Name::must_parse("ns1.example.com"), 2024010100));
  response.additionals.push_back(
      make_a(Name::must_parse("ns1.example.com"), 3600, 192, 0, 2, 53));
  response.edns->add_ede(EdeCode::kOther, "corpus");
  return response;
}

/// Minimal header + question skeleton the crafted-wire tests build on.
std::vector<std::uint8_t> header(std::uint16_t qdcount, std::uint16_t ancount,
                                 std::uint16_t nscount, std::uint16_t arcount) {
  std::vector<std::uint8_t> wire = {0x12, 0x34, 0x01, 0x00};
  for (const std::uint16_t count : {qdcount, ancount, nscount, arcount}) {
    wire.push_back(static_cast<std::uint8_t>(count >> 8));
    wire.push_back(static_cast<std::uint8_t>(count));
  }
  return wire;
}

void push_question_tail(std::vector<std::uint8_t>& wire) {
  wire.insert(wire.end(), {0x00, 0x01, 0x00, 0x01});  // QTYPE=A QCLASS=IN
}

TEST(WireHardening, ValidMessagesDecodeOk) {
  for (const Message& msg :
       {Message::make_query(7, Name::must_parse("example.com"), RrType::kA),
        rich_response()}) {
    const auto wire = msg.to_wire();
    const DecodeResult result = Message::decode(as_span(wire));
    ASSERT_TRUE(result.message) << to_string(result.error);
    EXPECT_EQ(result.error, WireErrc::kOk);
    // decode and from_wire agree: the wrapper drops only the error code.
    EXPECT_TRUE(Message::from_wire(as_span(wire)));
    // Round-trip is stable.
    EXPECT_EQ(result.message->to_wire(), wire);
  }
}

TEST(WireHardening, EveryStrictPrefixIsRejected) {
  // A strict parse leaves no slack: any prefix of a valid message must fail
  // (usually kTruncated; a prefix can also sever a name or rdata).
  const auto wire = rich_response().to_wire();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const DecodeResult result =
        Message::decode(std::span<const std::uint8_t>(wire.data(), len));
    EXPECT_FALSE(result.message) << "prefix of length " << len << " parsed";
    EXPECT_NE(result.error, WireErrc::kOk);
  }
}

TEST(WireHardening, TrailingBytesAreRejected) {
  auto wire = rich_response().to_wire();
  wire.push_back(0x00);
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kTrailingBytes);
}

TEST(WireHardening, SelfPointerIsALoop) {
  auto wire = header(1, 0, 0, 0);
  wire.push_back(0xc0);  // pointer to offset 12 = itself
  wire.push_back(0x0c);
  push_question_tail(wire);
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kPointerLoop);
}

TEST(WireHardening, ForwardPointerIsALoop) {
  auto wire = header(1, 0, 0, 0);
  wire.push_back(0xc0);  // pointer to offset 20: forward of the name
  wire.push_back(0x14);
  push_question_tail(wire);
  wire.resize(32, 0x00);
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kPointerLoop);
}

TEST(WireHardening, PingPongPointerChainTerminates) {
  // Two pointers referencing each other: strictly-backward enforcement
  // must reject the second hop instead of spinning.
  auto wire = header(1, 0, 0, 0);
  wire.push_back(0x01);  // "a"
  wire.push_back('a');
  wire.push_back(0xc0);  // at offset 14: points back to 12...
  wire.push_back(0x0c);
  push_question_tail(wire);
  // ...and the name at 12 re-reads "a" then hits its own pointer again —
  // the second visit targets an offset >= the first, which is the loop.
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kPointerLoop);
}

TEST(WireHardening, ReservedLabelTypesAreRejected) {
  for (const std::uint8_t prefix : {0x40, 0x80}) {
    auto wire = header(1, 0, 0, 0);
    wire.push_back(prefix | 0x01);
    wire.push_back('x');
    wire.push_back(0x00);
    push_question_tail(wire);
    const DecodeResult result = Message::decode(as_span(wire));
    EXPECT_FALSE(result.message);
    EXPECT_EQ(result.error, WireErrc::kBadLabelType);
  }
}

TEST(WireHardening, OverlongNameIsRejected) {
  // Five 63-byte labels = 321 wire bytes > the 255-byte limit.
  auto wire = header(1, 0, 0, 0);
  for (int label = 0; label < 5; ++label) {
    wire.push_back(63);
    for (int i = 0; i < 63; ++i)
      wire.push_back(static_cast<std::uint8_t>('a' + label));
  }
  wire.push_back(0x00);
  push_question_tail(wire);
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kNameTooLong);
}

TEST(WireHardening, CountsExceedingBytesAreTruncation) {
  auto wire = header(5, 0, 0, 0);  // claims five questions, carries none
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kTruncated);
}

TEST(WireHardening, HugeRdlengthIsTruncation) {
  auto wire = header(0, 1, 0, 0);
  wire.push_back(0x00);                               // root owner
  wire.insert(wire.end(), {0x00, 0x10, 0x00, 0x01});  // TXT IN
  wire.insert(wire.end(), {0x00, 0x00, 0x00, 0x3c});  // TTL
  wire.insert(wire.end(), {0xff, 0xff});              // RDLENGTH 65535
  wire.push_back(0x00);                               // ...but 1 byte follows
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kTruncated);
}

TEST(WireHardening, RdataNotConsumingRdlengthIsBad) {
  // NS rdata whose name ends before RDLENGTH says it should: the decoder
  // must flag the mismatch, not trust either length.
  auto wire = header(0, 0, 1, 0);
  wire.push_back(0x00);                               // root owner
  wire.insert(wire.end(), {0x00, 0x02, 0x00, 0x01});  // NS IN
  wire.insert(wire.end(), {0x00, 0x00, 0x0e, 0x10});  // TTL
  wire.insert(wire.end(), {0x00, 0x06});              // RDLENGTH 6
  wire.insert(wire.end(), {0x01, 'a', 0x00});         // name "a." (3 bytes)
  wire.insert(wire.end(), {0x00, 0x00, 0x00});        // filler the name skips
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kBadRdata);
}

TEST(WireHardening, MalformedOptOptionsAreBadOpt) {
  auto wire = header(0, 0, 0, 1);
  wire.push_back(0x00);                               // root owner
  wire.insert(wire.end(), {0x00, 0x29});              // OPT
  wire.insert(wire.end(), {0x04, 0xd0});              // payload 1232
  wire.insert(wire.end(), {0x00, 0x00, 0x00, 0x00});  // TTL
  wire.insert(wire.end(), {0x00, 0x06});              // RDLENGTH 6
  wire.insert(wire.end(), {0x00, 0x0f, 0x00, 0x09});  // EDE, len 9 > room
  wire.insert(wire.end(), {0x00, 0x00});
  const DecodeResult result = Message::decode(as_span(wire));
  EXPECT_FALSE(result.message);
  EXPECT_EQ(result.error, WireErrc::kBadOpt);
}

TEST(WireHardening, SingleBitFlipsNeverCrash) {
  // Deterministic single-bit corruption over the whole rich response:
  // every flip must either decode cleanly or fail with a typed error —
  // under ASan/UBSan this is the memory-safety sweep.
  const auto pristine = rich_response().to_wire();
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto wire = pristine;
      wire[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const DecodeResult result = Message::decode(as_span(wire));
      if (result.message) {
        EXPECT_EQ(result.error, WireErrc::kOk);
      } else {
        EXPECT_NE(result.error, WireErrc::kOk);
      }
    }
  }
}

TEST(WireHardening, TruncatedSuffixSweepsNeverCrash) {
  // Every contiguous chunk of a valid message (drop i bytes from the
  // front, j from the back) decodes or rejects without reading OOB.
  const auto pristine = rich_response().to_wire();
  for (std::size_t front = 0; front < pristine.size(); front += 3) {
    for (std::size_t back = 0; back + front < pristine.size(); back += 3) {
      const std::span<const std::uint8_t> chunk(pristine.data() + front,
                                                pristine.size() - front - back);
      (void)Message::decode(chunk);
    }
  }
}

TEST(WireHardening, ErrcNamesAreStable) {
  EXPECT_STREQ(to_string(WireErrc::kOk), "ok");
  EXPECT_STREQ(to_string(WireErrc::kTruncated), "truncated");
  EXPECT_STREQ(to_string(WireErrc::kBadLabelType), "bad-label-type");
  EXPECT_STREQ(to_string(WireErrc::kPointerLoop), "pointer-loop");
  EXPECT_STREQ(to_string(WireErrc::kNameTooLong), "name-too-long");
  EXPECT_STREQ(to_string(WireErrc::kBadRdata), "bad-rdata");
  EXPECT_STREQ(to_string(WireErrc::kBadOpt), "bad-opt");
  EXPECT_STREQ(to_string(WireErrc::kTrailingBytes), "trailing-bytes");
}

}  // namespace
}  // namespace zh::dns
