#!/bin/sh
# Documentation consistency checks (registered in ctest and run as the CI
# docs job):
#   1. every intra-repo markdown link resolves to an existing file;
#   2. every bench_* target registered in bench/CMakeLists.txt has a row
#      in docs/BENCHMARKS.md;
#   3. every page under docs/ is reachable: linked from at least one
#      other markdown file (no orphan documentation);
#   4. docs/PERFORMANCE.md exists and covers the crypto fast-path
#      surface: both knobs, all three SHA-1 kernels, and the benches
#      whose output the logical-cost contract protects.
# Exits non-zero with one line per violation.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root" || exit 1

status=0

# --- 1. intra-repo markdown links ---------------------------------------
# Markdown files under version-controlled docs locations (skip build dirs
# and third-party trees; PAPERS.md is a verbatim retrieval artifact whose
# extraction left dangling image refs we do not own).
md_files=$(find . -name '*.md' \
  -not -path './build*' -not -path './.git/*' -not -path '*/third_party/*' \
  -not -name 'PAPERS.md')

for md in $md_files; do
  dir=$(dirname -- "$md")
  # Inline links: capture the (target) of [text](target). One per line;
  # tolerate several links per source line.
  links=$(grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null |
    sed 's/^\[[^]]*\](//; s/)$//')
  [ -n "$links" ] || continue
  for link in $links; do
    case $link in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target=${link%%#*}       # strip fragment
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK: $md -> $link"
      status=1
    fi
  done
done

# --- 2. bench coverage in docs/BENCHMARKS.md ----------------------------
benches=$(grep -o 'zh_add_bench([a-z0-9_]*' bench/CMakeLists.txt |
  sed 's/zh_add_bench(//')
if [ -z "$benches" ]; then
  echo "NO BENCH TARGETS FOUND in bench/CMakeLists.txt (check the parser)"
  status=1
fi
for bench in $benches; do
  if ! grep -q "\`$bench\`" docs/BENCHMARKS.md; then
    echo "UNDOCUMENTED BENCH: $bench missing from docs/BENCHMARKS.md"
    status=1
  fi
done

# --- 3. no orphan docs --------------------------------------------------
# Every docs/*.md must be the target of at least one intra-repo link from
# some *other* markdown file, so each page stays discoverable by reading.
docs_pages=$(find docs -name '*.md' 2>/dev/null)
for page in $docs_pages; do
  base=$(basename -- "$page")
  linked=0
  for md in $md_files; do
    [ "$md" = "./$page" ] && continue
    if grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null |
       grep -q "($base\|/$base\|$base#\|/$base#"; then
      linked=1
      break
    fi
  done
  if [ "$linked" -eq 0 ]; then
    echo "ORPHAN DOC: $page is linked from no other markdown file"
    status=1
  fi
done

# --- 4. performance-docs coverage ---------------------------------------
# The fast paths are only safe while their invariants stay written down:
# PERFORMANCE.md must name every kernel, both override knobs, and the
# benches whose byte-identity the logical-cost contract guarantees.
perf_doc=docs/PERFORMANCE.md
if [ ! -f "$perf_doc" ]; then
  echo "MISSING DOC: $perf_doc"
  status=1
else
  for token in ZH_SHA1_IMPL ZH_CHAIN_MEMO scalar ssse3 avx2 \
               bench_micro_nsec3 bench_cve_cost bench_dos_amplification; do
    if ! grep -q "$token" "$perf_doc"; then
      echo "INCOMPLETE PERFORMANCE DOC: $perf_doc does not mention $token"
      status=1
    fi
  done
fi

if [ "$status" -eq 0 ]; then
  echo "check_docs: all markdown links resolve;" \
       "all $(echo "$benches" | wc -l | tr -d ' ') bench targets documented;" \
       "all $(echo "$docs_pages" | wc -l | tr -d ' ') docs pages linked;" \
       "performance doc covers the crypto fast-path surface."
fi
exit "$status"
