// Integration tests for the measurement pipeline: the §4.1 domain scanner
// against lazily-hosted synthetic domains, the TLD census, and the §4.2
// resolver prober (threshold inference, Item 7/12 detection, aggregation).
#include <gtest/gtest.h>

#include <memory>

#include "scanner/campaign.hpp"
#include "workload/install.hpp"
#include "workload/resolver_population.hpp"

namespace zh::scanner {
namespace {

using dns::Name;
using dns::Rcode;
using simnet::IpAddress;

/// Small shared world: probe infrastructure + a thin domain population.
class ScannerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new workload::EcosystemSpec({.scale = 0.00002, .seed = 42});
    internet_ = new testbed::Internet();
    probe_specs_ = testbed::add_probe_infrastructure(*internet_);
    workload::install_ecosystem(*internet_, *spec_);
    internet_->build();
    scan_resolver_ = internet_
                         ->make_resolver(resolver::ResolverProfile::cloudflare(),
                                         IpAddress::v4(1, 1, 1, 1))
                         .release();
  }
  static void TearDownTestSuite() {
    delete scan_resolver_;
    delete internet_;
    delete spec_;
  }

  static workload::EcosystemSpec* spec_;
  static testbed::Internet* internet_;
  static std::vector<testbed::ProbeZone> probe_specs_;
  static resolver::RecursiveResolver* scan_resolver_;
};

workload::EcosystemSpec* ScannerTest::spec_ = nullptr;
testbed::Internet* ScannerTest::internet_ = nullptr;
std::vector<testbed::ProbeZone> ScannerTest::probe_specs_;
resolver::RecursiveResolver* ScannerTest::scan_resolver_ = nullptr;

TEST_F(ScannerTest, ScanRecoversGroundTruthParameters) {
  DomainScanner scanner(internet_->network(), IpAddress::v4(203, 0, 113, 200),
                        scan_resolver_->address());
  std::size_t checked = 0;
  for (std::size_t index = 0; index < spec_->domain_count() && checked < 40;
       ++index) {
    const workload::DomainProfile profile = spec_->domain(index);
    if (profile.denial != zone::DenialMode::kNsec3) continue;
    ++checked;
    const DomainScanResult result = scanner.scan(profile.apex);
    ASSERT_EQ(result.classification, DomainScanResult::Class::kNsec3Enabled)
        << profile.apex.to_string();
    ASSERT_TRUE(result.nsec3);
    EXPECT_EQ(result.nsec3->iterations, profile.nsec3.iterations);
    EXPECT_EQ(result.nsec3->salt, profile.nsec3.salt);
    EXPECT_EQ(result.nsec3->opt_out, profile.nsec3.opt_out);
    EXPECT_TRUE(result.nsec3->records_consistent);
    EXPECT_TRUE(result.nsec3->matches_nsec3param);
    ASSERT_TRUE(result.nsec3param);
    EXPECT_EQ(result.nsec3param->iterations, profile.nsec3.iterations);
  }
  EXPECT_EQ(checked, 40u);
}

TEST_F(ScannerTest, ScanClassifiesNonDnssecAndNsecDomains) {
  DomainScanner scanner(internet_->network(), IpAddress::v4(203, 0, 113, 201),
                        scan_resolver_->address());
  bool saw_plain = false, saw_nsec = false;
  for (std::size_t index = 0;
       index < spec_->domain_count() && !(saw_plain && saw_nsec); ++index) {
    const workload::DomainProfile profile = spec_->domain(index);
    if (!profile.dnssec && !saw_plain) {
      const DomainScanResult result = scanner.scan(profile.apex);
      EXPECT_EQ(result.classification, DomainScanResult::Class::kNoDnssec);
      EXPECT_FALSE(result.dnskey);
      saw_plain = true;
    }
    if (profile.dnssec && profile.denial == zone::DenialMode::kNsec &&
        !saw_nsec) {
      const DomainScanResult result = scanner.scan(profile.apex);
      EXPECT_EQ(result.classification,
                DomainScanResult::Class::kDnssecNoNsec3);
      EXPECT_TRUE(result.dnskey);
      EXPECT_TRUE(result.nsec_seen);
      saw_nsec = true;
    }
  }
  EXPECT_TRUE(saw_plain);
  EXPECT_TRUE(saw_nsec);
}

TEST_F(ScannerTest, ScanExtractsOperatorNsNames) {
  DomainScanner scanner(internet_->network(), IpAddress::v4(203, 0, 113, 202),
                        scan_resolver_->address());
  for (std::size_t index = 0; index < spec_->domain_count(); ++index) {
    const workload::DomainProfile profile = spec_->domain(index);
    if (profile.denial != zone::DenialMode::kNsec3) continue;
    const DomainScanResult result = scanner.scan(profile.apex);
    const std::string op_name =
        spec_->operators()[profile.operator_index].name;
    ASSERT_EQ(result.ns_names.size(), 2u);
    EXPECT_TRUE(result.ns_names[0].is_subdomain_of(
        Name::must_parse(op_name + ".net")))
        << result.ns_names[0].to_string() << " vs " << op_name;
    break;
  }
}

TEST_F(ScannerTest, CampaignAggregatesConsistently) {
  DomainCampaign campaign(*internet_, *spec_, scan_resolver_->address());
  campaign.run(400);
  const DomainCampaignStats& stats = campaign.stats();
  EXPECT_EQ(stats.scanned, 400u);
  EXPECT_GT(stats.dnssec, 0u);
  EXPECT_GT(stats.nsec3, 0u);
  EXPECT_EQ(stats.iterations.total(), stats.nsec3);
  EXPECT_EQ(stats.salt_len.total(), stats.nsec3);
  EXPECT_EQ(stats.zero_iterations + stats.iterations.count_above(0),
            stats.nsec3);
  // The planted specials (indexes 0..212) must be visible.
  EXPECT_EQ(stats.over_150_iterations, 43u);
  EXPECT_EQ(stats.at_500_iterations, 12u);
  EXPECT_EQ(stats.salt_over_45, 170u);
  EXPECT_EQ(stats.salt_at_160, 9u);
  EXPECT_EQ(campaign.records().size(), 400u);
  EXPECT_NE(campaign.record_for(0), nullptr);
  EXPECT_EQ(campaign.record_for(401), nullptr);
}

TEST_F(ScannerTest, TldCensusThroughTheWire) {
  const TldCensusStats stats =
      scan_tlds(*internet_, *spec_, scan_resolver_->address());
  EXPECT_EQ(stats.scanned, 1449u);
  EXPECT_EQ(stats.dnssec, 1354u);
  EXPECT_EQ(stats.nsec3, 1302u);
  EXPECT_EQ(stats.zero_iterations, 688u);
  EXPECT_EQ(stats.at_100_iterations, 447u);
  EXPECT_EQ(stats.salt_8, 558u);
  EXPECT_EQ(stats.salt_10, 7u);
  EXPECT_NEAR(static_cast<double>(stats.opt_out) / stats.nsec3, 0.854, 0.02);
}

TEST_F(ScannerTest, ProberClassifiesValidator) {
  auto validating = internet_->make_resolver(
      resolver::ResolverProfile::bind9_2021(), IpAddress::v4(203, 0, 113, 210));
  auto plain = internet_->make_resolver(
      resolver::ResolverProfile::non_validating(),
      IpAddress::v4(203, 0, 113, 211));

  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 212),
                        probe_specs_);
  const ResolverProbeResult v = prober.probe(validating->address(), "tv");
  EXPECT_TRUE(v.responsive);
  EXPECT_TRUE(v.validator);
  const ResolverProbeResult p = prober.probe(plain->address(), "tp");
  EXPECT_TRUE(p.responsive);
  EXPECT_FALSE(p.validator);
}

TEST_F(ScannerTest, ProberInfersInsecureLimit150) {
  auto r = internet_->make_resolver(resolver::ResolverProfile::bind9_2021(),
                                    IpAddress::v4(203, 0, 113, 213));
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 214),
                        probe_specs_);
  const ResolverProbeResult result = prober.probe(r->address(), "t150");
  EXPECT_TRUE(result.implements_item6);
  EXPECT_FALSE(result.implements_item8);
  ASSERT_TRUE(result.insecure_limit);
  EXPECT_EQ(*result.insecure_limit, 150);
  ASSERT_TRUE(result.first_insecure);
  EXPECT_EQ(*result.first_insecure, 151);
  EXPECT_FALSE(result.item7_violation);
  // bind9-2021 predates EDE support: no EDE on the limited response.
  EXPECT_FALSE(result.limit_ede);
}

TEST_F(ScannerTest, ProberCapturesEde27FromCveEraSoftware) {
  auto r = internet_->make_resolver(resolver::ResolverProfile::knot_2023(),
                                    IpAddress::v4(203, 0, 113, 227));
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 228),
                        probe_specs_);
  const ResolverProbeResult result = prober.probe(r->address(), "tede");
  ASSERT_TRUE(result.insecure_limit);
  EXPECT_EQ(*result.insecure_limit, 50);
  ASSERT_TRUE(result.limit_ede);
  EXPECT_EQ(*result.limit_ede, dns::EdeCode::kUnsupportedNsec3Iterations);
}

TEST_F(ScannerTest, ProberInfersServfailLimit150) {
  auto r = internet_->make_resolver(resolver::ResolverProfile::cloudflare(),
                                    IpAddress::v4(203, 0, 113, 215));
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 216),
                        probe_specs_);
  const ResolverProbeResult result = prober.probe(r->address(), "tcf");
  EXPECT_TRUE(result.implements_item8);
  EXPECT_FALSE(result.implements_item6);
  ASSERT_TRUE(result.servfail_limit);
  EXPECT_EQ(*result.servfail_limit, 150);
  ASSERT_TRUE(result.first_servfail);
  EXPECT_EQ(*result.first_servfail, 151);
}

TEST_F(ScannerTest, ProberInfersStrictZero) {
  auto r = internet_->make_resolver(resolver::ResolverProfile::strict_zero(),
                                    IpAddress::v4(203, 0, 113, 217));
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 218),
                        probe_specs_);
  const ResolverProbeResult result = prober.probe(r->address(), "tsz");
  EXPECT_TRUE(result.implements_item8);
  ASSERT_TRUE(result.first_servfail);
  EXPECT_EQ(*result.first_servfail, 1);
  EXPECT_EQ(*result.servfail_limit, 0);
}

TEST_F(ScannerTest, ProberDetectsItem7Violation) {
  auto r = internet_->make_resolver(
      resolver::ResolverProfile::item7_violator(),
      IpAddress::v4(203, 0, 113, 219));
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 220),
                        probe_specs_);
  const ResolverProbeResult result = prober.probe(r->address(), "ti7");
  EXPECT_TRUE(result.implements_item6);
  EXPECT_TRUE(result.item7_violation);
}

TEST_F(ScannerTest, ProberDetectsItem12Gap) {
  auto r = internet_->make_resolver(resolver::ResolverProfile::item12_gap(),
                                    IpAddress::v4(203, 0, 113, 221));
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 222),
                        probe_specs_);
  const ResolverProbeResult result = prober.probe(r->address(), "t12");
  EXPECT_TRUE(result.item12_gap);
  EXPECT_EQ(*result.insecure_limit, 100);
  EXPECT_EQ(*result.servfail_limit, 150);
}

TEST_F(ScannerTest, SweepAggregation) {
  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 113, 223),
                        probe_specs_);
  ResolverSweepStats stats;
  auto a = internet_->make_resolver(resolver::ResolverProfile::bind9_2021(),
                                    IpAddress::v4(203, 0, 113, 224));
  auto b = internet_->make_resolver(resolver::ResolverProfile::cloudflare(),
                                    IpAddress::v4(203, 0, 113, 225));
  auto c = internet_->make_resolver(
      resolver::ResolverProfile::non_validating(),
      IpAddress::v4(203, 0, 113, 226));
  stats.add(prober.probe(a->address(), "agg-a"));
  stats.add(prober.probe(b->address(), "agg-b"));
  stats.add(prober.probe(c->address(), "agg-c"));

  EXPECT_EQ(stats.probed, 3u);
  EXPECT_EQ(stats.validators, 2u);
  EXPECT_EQ(stats.item6, 1u);
  EXPECT_EQ(stats.item8, 1u);
  EXPECT_EQ(stats.insecure_limits.at(150), 1u);
  EXPECT_EQ(stats.servfail_limits.at(150), 1u);

  // Figure 3 series sanity: at 5 iterations both validators answer
  // NXDOMAIN+AD; at 500 one is insecure-NXDOMAIN and one SERVFAILs.
  const auto& low = stats.by_iteration.at(5);
  EXPECT_EQ(low.nxdomain, 2u);
  EXPECT_EQ(low.nxdomain_ad, 2u);
  EXPECT_EQ(low.servfail, 0u);
  const auto& high = stats.by_iteration.at(500);
  EXPECT_EQ(high.nxdomain, 1u);
  EXPECT_EQ(high.nxdomain_ad, 0u);
  EXPECT_EQ(high.servfail, 1u);
}


TEST_F(ScannerTest, ServerLogsExposeForwardingTargets) {
  // §4.2: "We enable server-side logging to track source IP addresses
  // interacting with our name server. If the query destination is a
  // forwarder, this helps identify the forwarding target."
  auto upstream = internet_->make_resolver(
      resolver::ResolverProfile::cloudflare(), IpAddress::v4(203, 0, 114, 1));
  resolver::RecursiveResolver::Config config;
  config.address = IpAddress::v4(203, 0, 114, 2);
  config.profile = resolver::ResolverProfile::non_validating();
  config.forward = true;
  config.forward_target = upstream->address();
  config.trust_anchor = internet_->trust_anchor();
  resolver::RecursiveResolver forwarder(internet_->network(), config,
                                        internet_->root_servers());
  forwarder.attach();

  // The probe zones are hosted at 192.0.2.3 (testbed probe host).
  const auto probe_host = IpAddress::v4(192, 0, 2, 3);
  internet_->network().enable_logging_for(probe_host);
  internet_->network().clear_query_log();

  ResolverProber prober(internet_->network(), IpAddress::v4(203, 0, 114, 3),
                        probe_specs_);
  (void)prober.probe(forwarder.address(), "fwdlog");

  bool saw_upstream = false, saw_forwarder = false;
  for (const auto& entry : internet_->network().query_log()) {
    if (entry.source == upstream->address()) saw_upstream = true;
    if (entry.source == forwarder.address()) saw_forwarder = true;
  }
  internet_->network().clear_query_log();
  EXPECT_TRUE(saw_upstream)
      << "the authoritative log reveals the forwarding target";
  EXPECT_FALSE(saw_forwarder)
      << "the forwarder itself never contacts the authoritative server";
}

}  // namespace
}  // namespace zh::scanner
