// Tests for misbehaving-infrastructure handling: RFC 5155 consistency
// violations the scanner must classify as excluded (as §4.1 does), and
// response spoofing the resolver must reject (RFC 5452 hygiene).
#include <gtest/gtest.h>

#include <memory>

#include "scanner/domain_scanner.hpp"
#include "testbed/internet.hpp"

namespace zh {
namespace {

using dns::Name;
using dns::Rcode;
using dns::RrType;
using simnet::IpAddress;

/// Builds a world with one normal domain, then lets the test mutate the
/// zone before serving.
struct World {
  testbed::Internet internet;
  std::shared_ptr<zone::Zone> zone;
  std::unique_ptr<resolver::RecursiveResolver> resolver;

  explicit World(const char* apex) {
    internet.add_tld("com", testbed::TldConfig{});
    testbed::DomainConfig config;
    config.apex = Name::must_parse(apex);
    config.nsec3 = {.iterations = 4, .salt = {0x42}, .opt_out = false};
    internet.add_domain(config);
    internet.build();
    zone = std::const_pointer_cast<zone::Zone>(
        internet.zone(Name::must_parse(apex)));
    resolver = internet.make_resolver(
        resolver::ResolverProfile::cloudflare(), IpAddress::v4(1, 1, 1, 1));
  }
};

TEST(ScannerMisbehavior, MismatchedNsec3ParamExcluded) {
  World world("mismatch.com");
  // Corrupt the published NSEC3PARAM: claim different iterations than the
  // NSEC3 records actually use (an RFC 5155 §4 violation).
  auto* apex_node = world.zone->mutable_node(world.zone->apex());
  ASSERT_NE(apex_node, nullptr);
  auto& param_set = apex_node->rrsets.at(RrType::kNsec3Param);
  dns::Nsec3ParamRdata forged;
  forged.iterations = 99;
  forged.salt = {0x42};
  param_set.rdatas[0] = forged.encode();

  scanner::DomainScanner scanner(world.internet.network(),
                                 IpAddress::v4(203, 0, 113, 10),
                                 world.resolver->address());
  const auto result = scanner.scan(Name::must_parse("mismatch.com"));
  EXPECT_EQ(result.classification,
            scanner::DomainScanResult::Class::kExcluded);
  ASSERT_TRUE(result.nsec3);
  EXPECT_FALSE(result.nsec3->matches_nsec3param);
  EXPECT_TRUE(result.nsec3->records_consistent);
}

TEST(ScannerMisbehavior, MultipleNsec3ParamsExcluded) {
  World world("twoparam.com");
  dns::Nsec3ParamRdata extra;
  extra.iterations = 7;
  world.zone->add(dns::ResourceRecord::make(
      world.zone->apex(), RrType::kNsec3Param, 0, extra));

  scanner::DomainScanner scanner(world.internet.network(),
                                 IpAddress::v4(203, 0, 113, 11),
                                 world.resolver->address());
  const auto result = scanner.scan(Name::must_parse("twoparam.com"));
  EXPECT_EQ(result.nsec3param_count, 2u);
  EXPECT_EQ(result.classification,
            scanner::DomainScanResult::Class::kExcluded)
      << "§4.1: only domains with exactly one NSEC3PARAM are kept";
}

TEST(ScannerMisbehavior, InconsistentNsec3RecordsExcluded) {
  World world("inconsist.com");
  // Rewrite one chain entry's iterations so the NSEC3 RRset disagrees with
  // itself across records.
  auto entries = world.zone->nsec3_entries();
  ASSERT_GE(entries.size(), 2u);
  entries[0].rdata.iterations = 250;
  world.zone->set_nsec3_chain(entries,
                              *world.zone->nsec3_params_used());

  scanner::DomainScanner scanner(world.internet.network(),
                                 IpAddress::v4(203, 0, 113, 12),
                                 world.resolver->address());
  const auto result = scanner.scan(Name::must_parse("inconsist.com"));
  // Depending on which entries the negative proof touches, the scanner
  // either sees the inconsistency directly or a param mismatch; both are
  // excluded, never counted as NSEC3-enabled.
  if (result.nsec3 && !result.nsec3->records_consistent) {
    EXPECT_EQ(result.classification,
              scanner::DomainScanResult::Class::kExcluded);
  } else {
    EXPECT_NE(result.classification,
              scanner::DomainScanResult::Class::kNsec3Enabled);
  }
}

TEST(ResolverMisbehavior, SpoofedTransactionIdDiscarded) {
  World world("spoof.com");
  // An off-path attacker blindly flips the transaction ID: the resolver
  // must drop the response (and, with no second answer coming, SERVFAIL).
  world.internet.network().set_tamper(
      [](dns::Message& response, const IpAddress&, const IpAddress&) {
        response.header.id ^= 0x5555;
        return true;
      });
  auto victim = world.internet.make_resolver(
      resolver::ResolverProfile::bind9_2021(), IpAddress::v4(203, 0, 113, 13));
  const auto response =
      victim->resolve(Name::must_parse("www.spoof.com"), RrType::kA);
  world.internet.network().set_tamper(nullptr);
  EXPECT_EQ(response.header.rcode, Rcode::kServFail);
}

TEST(ResolverMisbehavior, SpoofedQuestionDiscarded) {
  World world("spoofq.com");
  world.internet.network().set_tamper(
      [](dns::Message& response, const IpAddress&, const IpAddress&) {
        if (response.questions.empty()) return false;
        response.questions.front().name =
            Name::must_parse("evil.example");
        return true;
      });
  auto victim = world.internet.make_resolver(
      resolver::ResolverProfile::bind9_2021(), IpAddress::v4(203, 0, 113, 14));
  const auto response =
      victim->resolve(Name::must_parse("www.spoofq.com"), RrType::kA);
  world.internet.network().set_tamper(nullptr);
  EXPECT_EQ(response.header.rcode, Rcode::kServFail);
}

TEST(ResolverMisbehavior, ForgedAnswerDataFailsValidation) {
  World world("forged.com");
  // An on-path attacker rewrites the A record in the final answer. The
  // RRSIG no longer matches → SERVFAIL, the core DNSSEC guarantee.
  world.internet.network().set_tamper(
      [](dns::Message& response, const IpAddress&, const IpAddress&) {
        bool touched = false;
        for (auto& rr : response.answers) {
          if (rr.type == RrType::kA && rr.rdata.size() == 4) {
            rr.rdata[3] ^= 0xff;
            touched = true;
          }
        }
        return touched;
      });
  auto victim = world.internet.make_resolver(
      resolver::ResolverProfile::bind9_2021(), IpAddress::v4(203, 0, 113, 15));
  const auto response =
      victim->resolve(Name::must_parse("www.forged.com"), RrType::kA);
  world.internet.network().set_tamper(nullptr);
  EXPECT_EQ(response.header.rcode, Rcode::kServFail);
}

TEST(ResolverMisbehavior, ForgedAnswerAcceptedWithoutValidation) {
  World world("unvalidated.com");
  world.internet.network().set_tamper(
      [](dns::Message& response, const IpAddress&, const IpAddress&) {
        bool touched = false;
        for (auto& rr : response.answers) {
          if (rr.type == RrType::kA && rr.rdata.size() == 4) {
            rr.rdata[3] ^= 0xff;
            touched = true;
          }
        }
        return touched;
      });
  auto victim = world.internet.make_resolver(
      resolver::ResolverProfile::non_validating(),
      IpAddress::v4(203, 0, 113, 16));
  const auto response =
      victim->resolve(Name::must_parse("www.unvalidated.com"), RrType::kA);
  world.internet.network().set_tamper(nullptr);
  // The non-validating resolver happily serves the forged record — the
  // counterfactual that motivates DNSSEC in the first place.
  EXPECT_EQ(response.header.rcode, Rcode::kNoError);
  ASSERT_EQ(response.answers_of_type(RrType::kA).size(), 1u);
}


TEST(ResolverMisbehavior, UnsupportedDsAlgorithmIsInsecureNotBogus) {
  // RFC 4035 §5.2: a delegation whose only DS uses an algorithm the
  // validator does not implement makes the child insecure — resolution
  // works, the AD bit just stays clear.
  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});
  testbed::DomainConfig config;
  config.apex = Name::must_parse("exotic.com");
  config.nsec3 = {.iterations = 0, .salt = {}, .opt_out = false};
  config.ds_algorithm_override = 8;  // RSASHA256: recognised, unimplemented
  internet.add_domain(config);
  internet.build();

  auto r = internet.make_resolver(resolver::ResolverProfile::bind9_2021(),
                                  IpAddress::v4(203, 0, 113, 20));
  const auto positive =
      r->resolve(Name::must_parse("www.exotic.com"), RrType::kA);
  EXPECT_EQ(positive.header.rcode, Rcode::kNoError);
  EXPECT_FALSE(positive.header.ad);
  EXPECT_EQ(positive.answers_of_type(RrType::kA).size(), 1u);

  const auto negative =
      r->resolve(Name::must_parse("nope.exotic.com"), RrType::kA);
  EXPECT_EQ(negative.header.rcode, Rcode::kNxDomain);
  EXPECT_FALSE(negative.header.ad);
}

}  // namespace
}  // namespace zh
