// Unit + property tests for base16 / base32hex / base64 codecs.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "dns/encoding.hpp"

namespace zh::dns {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> list) {
  std::vector<std::uint8_t> out;
  for (const int v : list) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(Base16, Encode) {
  EXPECT_EQ(base16_encode(bytes({0xaa, 0xbb, 0xcc, 0xdd})), "aabbccdd");
  EXPECT_EQ(base16_encode({}), "");
}

TEST(Base16, DecodeBothCases) {
  EXPECT_EQ(base16_decode("AABBccdd"), bytes({0xaa, 0xbb, 0xcc, 0xdd}));
}

TEST(Base16, DecodeRejectsOddLength) { EXPECT_FALSE(base16_decode("abc")); }

TEST(Base16, DecodeRejectsNonHex) { EXPECT_FALSE(base16_decode("zz")); }

// RFC 4648 §10 base32hex vectors (lowercased, unpadded, as NSEC3 uses them).
TEST(Base32Hex, Rfc4648Vectors) {
  EXPECT_EQ(base32hex_encode({}), "");
  const auto f = bytes({'f'});
  EXPECT_EQ(base32hex_encode(std::span<const std::uint8_t>(f)), "co");
  const auto fo = bytes({'f', 'o'});
  EXPECT_EQ(base32hex_encode(std::span<const std::uint8_t>(fo)), "cpng");
  const auto foo = bytes({'f', 'o', 'o'});
  EXPECT_EQ(base32hex_encode(std::span<const std::uint8_t>(foo)), "cpnmu");
  const auto foob = bytes({'f', 'o', 'o', 'b'});
  EXPECT_EQ(base32hex_encode(std::span<const std::uint8_t>(foob)), "cpnmuog");
  const auto fooba = bytes({'f', 'o', 'o', 'b', 'a'});
  EXPECT_EQ(base32hex_encode(std::span<const std::uint8_t>(fooba)),
            "cpnmuoj1");
  const auto foobar = bytes({'f', 'o', 'o', 'b', 'a', 'r'});
  EXPECT_EQ(base32hex_encode(std::span<const std::uint8_t>(foobar)),
            "cpnmuoj1e8");
}

TEST(Base32Hex, DecodeAcceptsPaddingAndCase) {
  const auto expected = bytes({'f', 'o'});
  EXPECT_EQ(base32hex_decode("cpng"), expected);
  EXPECT_EQ(base32hex_decode("CPNG===="), expected);
}

TEST(Base32Hex, DecodeRejectsBadCharacters) {
  EXPECT_FALSE(base32hex_decode("wxyz"));  // w..z outside extended-hex range
  EXPECT_FALSE(base32hex_decode("cp!g"));
}

TEST(Base32Hex, DecodeRejectsNonzeroTrailingBits) {
  // 'v' = 0b11111: a single symbol leaves 5 nonzero leftover bits.
  EXPECT_FALSE(base32hex_decode("v"));
}

TEST(Base32Hex, Nsec3DigestLength) {
  // 20-byte SHA-1 → exactly 32 base32hex characters, no padding.
  const std::vector<std::uint8_t> digest(20, 0xab);
  EXPECT_EQ(base32hex_encode(std::span<const std::uint8_t>(digest)).size(),
            32u);
}

// RFC 4648 §10 base64 vectors.
TEST(Base64, Rfc4648Vectors) {
  const auto f = bytes({'f'});
  EXPECT_EQ(base64_encode(std::span<const std::uint8_t>(f)), "Zg==");
  const auto fo = bytes({'f', 'o'});
  EXPECT_EQ(base64_encode(std::span<const std::uint8_t>(fo)), "Zm8=");
  const auto foo = bytes({'f', 'o', 'o'});
  EXPECT_EQ(base64_encode(std::span<const std::uint8_t>(foo)), "Zm9v");
  const auto foobar = bytes({'f', 'o', 'o', 'b', 'a', 'r'});
  EXPECT_EQ(base64_encode(std::span<const std::uint8_t>(foobar)), "Zm9vYmFy");
}

TEST(Base64, DecodeRejectsBadCharacters) {
  EXPECT_FALSE(base64_decode("Zm9v!a=="));
}

class CodecRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecRoundTrip, AllThreeCodecs) {
  std::mt19937 rng(GetParam() * 2654435761u + 1);
  std::vector<std::uint8_t> data(GetParam());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  const std::span<const std::uint8_t> span(data);
  EXPECT_EQ(base16_decode(base16_encode(span)), data);
  EXPECT_EQ(base32hex_decode(base32hex_encode(span)), data);
  EXPECT_EQ(base64_decode(base64_encode(span)), data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CodecRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 19, 20,
                                           21, 32, 63, 64, 65, 255, 1024));

}  // namespace
}  // namespace zh::dns
