// Tests for the aggressive negative-caching subsystem (ISSUE 9):
// resolver/negcache.hpp unit behaviour (insert/lookup/eviction determinism,
// RFC 8198 §5.2 opt-out and delegation refusals, adversarial malformed
// evidence, RFC 9520 TTL/backoff), the resolver wiring (synthesis absorbs
// repeat-cover water torture; failure-cache serves repeated broken names),
// and the campaign-level contracts: synth-off leaves campaign stats exactly
// as they were, and the new counters are --jobs-invariant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "resolver/negcache.hpp"
#include "scanner/parallel.hpp"
#include "testbed/internet.hpp"
#include "workload/install.hpp"
#include "workload/resolver_population.hpp"

namespace zh::resolver {
namespace {

using dns::Name;
using dns::RrType;

const Nsec3CacheParams kParams{.hash_algorithm = 1,
                               .iterations = 3,
                               .salt = {0xab, 0xcd}};

std::vector<std::uint8_t> hash_of(const Name& name) {
  return dns::nsec3_hash_name(
      name,
      std::span<const std::uint8_t>(kParams.salt.data(), kParams.salt.size()),
      kParams.iterations);
}

/// The full NSEC3 chain for `names` in `zone`: hash each name, sort, link
/// owner→next with the wrap span at the end — exactly the interval set a
/// complete set of validated denial responses would have contributed.
std::vector<NegCacheInterval> chain_for(
    const Name& zone, const std::vector<Name>& names, bool opt_out = false,
    const std::vector<dns::TypeBitmap>& bitmaps = {}) {
  std::vector<std::pair<std::vector<std::uint8_t>, std::size_t>> hashed;
  for (std::size_t i = 0; i < names.size(); ++i)
    hashed.emplace_back(hash_of(names[i]), i);
  std::sort(hashed.begin(), hashed.end());
  std::vector<NegCacheInterval> intervals;
  for (std::size_t i = 0; i < hashed.size(); ++i) {
    NegCacheInterval interval;
    interval.owner_hash = hashed[i].first;
    interval.next_hash = hashed[(i + 1) % hashed.size()].first;
    interval.opt_out = opt_out;
    if (!bitmaps.empty()) interval.types = bitmaps[hashed[i].second];
    interval.record.name = dns::nsec3_owner_name(
        names[hashed[i].second], zone,
        std::span<const std::uint8_t>(kParams.salt.data(),
                                      kParams.salt.size()),
        kParams.iterations);
    interval.record.type = RrType::kNsec3;
    intervals.push_back(std::move(interval));
  }
  return intervals;
}

TEST(AggressiveNegCache, SynthesizesNxDomainFromCachedChain) {
  const Name zone = Name::must_parse("example.test");
  const std::vector<Name> names = {zone, *zone.prepended("www"),
                                   *zone.prepended("mail")};
  AggressiveNegCache cache;
  ASSERT_TRUE(cache.insert(zone, kParams, chain_for(zone, names)));
  EXPECT_EQ(cache.interval_count(), 3u);

  const auto synth = cache.lookup(*zone.prepended("nope"), RrType::kA);
  EXPECT_TRUE(synth.found);
  EXPECT_EQ(synth.rcode, dns::Rcode::kNxDomain);
  EXPECT_FALSE(synth.opt_out_refusal);
  // CE + next-closer cover + wildcard cover, deduplicated.
  EXPECT_FALSE(synth.authorities.empty());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(AggressiveNegCache, SynthesizesNoDataOnExactMatch) {
  const Name zone = Name::must_parse("example.test");
  const std::vector<Name> names = {zone, *zone.prepended("www")};
  std::vector<dns::TypeBitmap> bitmaps(names.size());
  bitmaps[1] = dns::TypeBitmap{RrType::kA};  // www has A only
  AggressiveNegCache cache;
  ASSERT_TRUE(cache.insert(zone, kParams, chain_for(zone, names, false,
                                                    bitmaps)));

  const auto nodata = cache.lookup(*zone.prepended("www"), RrType::kTxt);
  EXPECT_TRUE(nodata.found);
  EXPECT_EQ(nodata.rcode, dns::Rcode::kNoError);

  // The bitmap says the type exists — nothing to deny from cache.
  const auto have_it = cache.lookup(*zone.prepended("www"), RrType::kA);
  EXPECT_FALSE(have_it.found);
}

TEST(AggressiveNegCache, DelegationOwnersDenyNothingBelowTheCut) {
  const Name zone = Name::must_parse("example.test");
  const std::vector<Name> names = {zone, *zone.prepended("child")};
  std::vector<dns::TypeBitmap> bitmaps(names.size());
  bitmaps[1] = dns::TypeBitmap{RrType::kNs};  // delegation point, no SOA
  AggressiveNegCache cache;
  ASSERT_TRUE(cache.insert(zone, kParams, chain_for(zone, names, false,
                                                    bitmaps)));

  // NODATA at the cut itself: refused for A, allowed for DS (parent-side).
  EXPECT_FALSE(cache.lookup(*zone.prepended("child"), RrType::kA).found);
  EXPECT_TRUE(cache.lookup(*zone.prepended("child"), RrType::kDs).found);

  // NXDOMAIN below the cut with the delegation as closest encloser: the
  // child zone is authoritative there, never this cache.
  const auto below =
      cache.lookup(*zone.prepended("child")->prepended("deep"), RrType::kA);
  EXPECT_FALSE(below.found);
}

TEST(AggressiveNegCache, OptOutSpansRefuseNxDomainSynthesis) {
  const Name zone = Name::must_parse("optout.test");
  const std::vector<Name> names = {zone, *zone.prepended("www")};
  AggressiveNegCache cache;
  ASSERT_TRUE(cache.insert(zone, kParams,
                           chain_for(zone, names, /*opt_out=*/true)));

  const auto synth = cache.lookup(*zone.prepended("nope"), RrType::kA);
  EXPECT_FALSE(synth.found);
  EXPECT_TRUE(synth.opt_out_refusal);
  EXPECT_EQ(cache.stats().optout_refusals, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(AggressiveNegCache, RejectsMalformedEvidence) {
  const Name zone = Name::must_parse("example.test");
  const std::vector<Name> names = {zone, *zone.prepended("www"),
                                   *zone.prepended("mail")};
  const auto good = chain_for(zone, names);
  AggressiveNegCache cache;

  // Empty batches and non-SHA-1 parameter sets.
  EXPECT_FALSE(cache.insert(zone, kParams, {}));
  Nsec3CacheParams gost = kParams;
  gost.hash_algorithm = 2;
  EXPECT_FALSE(cache.insert(zone, gost, good));

  // Wrong hash length.
  auto truncated = good;
  truncated[0].owner_hash.resize(10);
  EXPECT_FALSE(cache.insert(zone, kParams, truncated));

  // Duplicate owner hashes in one batch.
  auto duplicated = good;
  duplicated.push_back(good[0]);
  EXPECT_FALSE(cache.insert(zone, kParams, duplicated));

  // A span covering another span's owner — contradictory evidence. The
  // wrap span widened to swallow the whole circle contradicts every other
  // owner in the batch.
  auto contradictory = good;
  for (auto& interval : contradictory) {
    if (!std::lexicographical_compare(
            interval.owner_hash.begin(), interval.owner_hash.end(),
            interval.next_hash.begin(), interval.next_hash.end())) {
      auto widened = interval;
      widened.next_hash = interval.owner_hash;
      widened.next_hash.back() ^= 0x01;
      contradictory = {good[0], widened};
      break;
    }
  }
  EXPECT_FALSE(cache.insert(zone, kParams, contradictory));

  // Opt-Out disagreeing within the batch.
  auto mixed = good;
  mixed.back().opt_out = true;
  EXPECT_FALSE(cache.insert(zone, kParams, mixed));

  // Nothing was cached by any of the rejected batches.
  EXPECT_EQ(cache.interval_count(), 0u);
  EXPECT_EQ(cache.stats().rejected_batches, 6u);

  // Pin the zone binding, then contradict it: different parameters, then a
  // different Opt-Out flag — both malformed for this zone.
  ASSERT_TRUE(cache.insert(zone, kParams, good));
  Nsec3CacheParams other = kParams;
  other.iterations = 42;
  EXPECT_FALSE(cache.insert(zone, other, good));
  EXPECT_FALSE(cache.insert(zone, kParams, chain_for(zone, names, true)));
  // A same-owner span with a different next hash contradicts the cache.
  auto rewired = good;
  rewired[0].next_hash = rewired[0].owner_hash;
  rewired[0].next_hash.back() ^= 0xff;
  EXPECT_FALSE(cache.insert(zone, kParams, {rewired[0]}));
  EXPECT_EQ(cache.interval_count(), 3u);
}

TEST(AggressiveNegCache, EvictsWholeZonesFifo) {
  const Name old_zone = Name::must_parse("old.test");
  const Name new_zone = Name::must_parse("new.test");
  AggressiveNegCache cache(4);
  ASSERT_TRUE(cache.insert(old_zone, kParams,
                           chain_for(old_zone, {old_zone,
                                                *old_zone.prepended("a")})));
  ASSERT_TRUE(cache.insert(
      new_zone, kParams,
      chain_for(new_zone, {new_zone, *new_zone.prepended("a"),
                           *new_zone.prepended("b")})));
  // 2 + 3 intervals over capacity 4 → the oldest zone goes, wholesale.
  EXPECT_EQ(cache.zone_count(), 1u);
  EXPECT_EQ(cache.interval_count(), 3u);
  EXPECT_EQ(cache.stats().evicted, 2u);
  EXPECT_FALSE(cache.lookup(*old_zone.prepended("nope"), RrType::kA).found);
  EXPECT_TRUE(cache.lookup(*new_zone.prepended("nope"), RrType::kA).found);
}

TEST(AggressiveNegCache, DeterministicAcrossIdenticalSequences) {
  const Name zone = Name::must_parse("example.test");
  const std::vector<Name> names = {zone, *zone.prepended("www"),
                                   *zone.prepended("mail")};
  const auto run = [&] {
    AggressiveNegCache cache(8);
    cache.insert(zone, kParams, chain_for(zone, names));
    NegCacheStats observed;
    for (int i = 0; i < 16; ++i) {
      const auto name = *zone.prepended("q" + std::to_string(i));
      (void)cache.lookup(name, RrType::kA);
    }
    return cache.stats();
  };
  const NegCacheStats a = run();
  const NegCacheStats b = run();
  EXPECT_EQ(a.inserted, b.inserted);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_GT(a.hits, 0u);  // the chain covers the whole circle
}

TEST(FailureCache, TtlExpiryAndBackoff) {
  FailureCache cache({.base_ttl = simtime::Duration::from_seconds(5),
                      .max_ttl = simtime::Duration::from_seconds(300),
                      .capacity = 4});
  const simtime::Duration t0 = simtime::Duration::from_seconds(0);

  EXPECT_EQ(cache.record("a|1", t0, dns::EdeCode::kNetworkError, "down"),
            simtime::Duration::from_seconds(5));
  const auto hit = cache.lookup("a|1", t0 + simtime::Duration::from_seconds(4));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ede, dns::EdeCode::kNetworkError);
  EXPECT_EQ(hit->ede_text, "down");
  // now == expires is already stale (a 5 s TTL serves for exactly 5 s).
  EXPECT_FALSE(
      cache.lookup("a|1", t0 + simtime::Duration::from_seconds(5)).has_value());

  // Consecutive failures double the TTL: 5 → 10 → 20 … capped at 300.
  EXPECT_EQ(cache.record("a|1", t0), simtime::Duration::from_seconds(10));
  EXPECT_EQ(cache.record("a|1", t0), simtime::Duration::from_seconds(20));
  for (int i = 0; i < 10; ++i) cache.record("a|1", t0);
  EXPECT_EQ(cache.record("a|1", t0), simtime::Duration::from_seconds(300));
}

TEST(FailureCache, ClampsConfigIntoRfc9520Window) {
  FailureCache cache({.base_ttl = simtime::Duration::from_ms(10),
                      .max_ttl = simtime::Duration::from_seconds(9999)});
  const simtime::Duration t0 = simtime::Duration::from_seconds(0);
  // base clamps up to 1 s; max clamps down to 300 s.
  EXPECT_EQ(cache.record("k", t0), simtime::Duration::from_seconds(1));
  for (int i = 0; i < 12; ++i) cache.record("k", t0);
  EXPECT_EQ(cache.record("k", t0), simtime::Duration::from_seconds(300));
}

TEST(FailureCache, CapacityClearsWholesale) {
  FailureCache cache({.base_ttl = simtime::Duration::from_seconds(5),
                      .max_ttl = simtime::Duration::from_seconds(300),
                      .capacity = 2});
  const simtime::Duration t0 = simtime::Duration::from_seconds(0);
  cache.record("a", t0);
  cache.record("b", t0);
  cache.record("c", t0);  // over capacity → deterministic wholesale clear
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().clears, 1u);
  EXPECT_FALSE(cache.lookup("a", t0 + simtime::Duration::from_seconds(1))
                   .has_value());
  EXPECT_TRUE(cache.lookup("c", t0 + simtime::Duration::from_seconds(1))
                  .has_value());
}

// --- Resolver wiring ---

/// One small NSEC3 world: wt.example with the standard record set.
std::unique_ptr<testbed::Internet> water_torture_world(bool opt_out) {
  auto internet = std::make_unique<testbed::Internet>();
  testbed::DomainConfig config;
  config.apex = Name::must_parse("wt.example");
  config.nsec3 = {.iterations = 3, .salt = {0xab, 0xcd}, .opt_out = opt_out};
  internet->add_domain(config);
  internet->build();
  return internet;
}

TEST(ResolverNegCache, SynthesisAbsorbsRepeatCoverWaterTorture) {
  auto internet = water_torture_world(/*opt_out=*/false);
  ResolverProfile profile = ResolverProfile::permissive();
  profile.enable_aggressive(4096, simtime::Duration::from_seconds(5));
  auto victim = internet->make_resolver(profile,
                                        simnet::IpAddress::v4(10, 9, 0, 1));
  const Name apex = Name::must_parse("wt.example");

  // Warm: a few unique junk names fetch proofs covering the whole chain.
  for (int i = 0; i < 8; ++i) {
    const auto reply =
        victim->resolve(*apex.prepended("warm" + std::to_string(i)),
                        RrType::kA);
    EXPECT_EQ(reply.header.rcode, dns::Rcode::kNxDomain);
  }
  // Later warm probes may already synthesize; measure deltas from here.
  const std::uint64_t upstream_before = victim->stats().upstream_queries;
  const std::uint64_t synth_before = victim->stats().neg_synth_hits;
  ASSERT_GT(victim->stats().neg_cache_inserts, 0u);

  // Measured: every further unique name synthesizes from cache with zero
  // authoritative fetches, and the synthesized answer is validated (AD).
  for (int i = 0; i < 20; ++i) {
    const auto reply = victim->resolve(
        *apex.prepended("torture" + std::to_string(i)), RrType::kA);
    EXPECT_EQ(reply.header.rcode, dns::Rcode::kNxDomain);
    EXPECT_TRUE(reply.header.ad);
    EXPECT_FALSE(reply.authorities.empty());
  }
  EXPECT_EQ(victim->stats().upstream_queries, upstream_before);
  EXPECT_EQ(victim->stats().neg_synth_hits, synth_before + 20u);

  // flush_cache drops the intervals too: the next probe goes upstream.
  victim->flush_cache();
  (void)victim->resolve(*apex.prepended("after-flush"), RrType::kA);
  EXPECT_GT(victim->stats().upstream_queries, upstream_before);
}

TEST(ResolverNegCache, OptOutZoneNeverSynthesizesButCounts) {
  auto internet = water_torture_world(/*opt_out=*/true);
  ResolverProfile profile = ResolverProfile::permissive();
  profile.enable_aggressive(4096, simtime::Duration::from_seconds(5));
  auto victim = internet->make_resolver(profile,
                                        simnet::IpAddress::v4(10, 9, 0, 2));
  const Name apex = Name::must_parse("wt.example");

  for (int i = 0; i < 12; ++i) {
    const auto reply = victim->resolve(
        *apex.prepended("torture" + std::to_string(i)), RrType::kA);
    EXPECT_EQ(reply.header.rcode, dns::Rcode::kNxDomain);
  }
  EXPECT_EQ(victim->stats().neg_synth_hits, 0u);
  EXPECT_GT(victim->stats().neg_synth_optout_refusals, 0u);
}

TEST(ResolverNegCache, CapabilityOffLeavesCountersAtZero) {
  auto internet = water_torture_world(/*opt_out=*/false);
  auto victim = internet->make_resolver(ResolverProfile::permissive(),
                                        simnet::IpAddress::v4(10, 9, 0, 3));
  const Name apex = Name::must_parse("wt.example");
  for (int i = 0; i < 8; ++i)
    (void)victim->resolve(*apex.prepended("q" + std::to_string(i)),
                          RrType::kA);
  EXPECT_EQ(victim->stats().neg_synth_hits, 0u);
  EXPECT_EQ(victim->stats().neg_cache_inserts, 0u);
  EXPECT_EQ(victim->stats().failure_cache_hits, 0u);
  // The metrics stay unregistered, so traced output is untouched too.
  EXPECT_EQ(internet->network().tracer().metrics().value(
                "resolver.neg_synth_hit"),
            0u);
}

TEST(ResolverNegCache, FailureCacheServesRepeatedBrokenNames) {
  auto internet = water_torture_world(/*opt_out=*/false);
  ResolverProfile profile = ResolverProfile::permissive();
  profile.enable_aggressive(4096, simtime::Duration::from_seconds(5));
  auto victim = internet->make_resolver(profile,
                                        simnet::IpAddress::v4(10, 9, 0, 4));
  // Total loss: every upstream exchange times out transiently.
  internet->network().set_loss(1.0, 7);

  const Name broken = Name::must_parse("down.wt.example");
  const auto first = victim->resolve(broken, RrType::kA);
  EXPECT_EQ(first.header.rcode, dns::Rcode::kServFail);
  EXPECT_EQ(victim->stats().failure_cache_inserts, 1u);
  const std::uint64_t upstream_before = victim->stats().upstream_queries;

  // The repeat is served from the failure cache — no new upstream attempts.
  const auto second = victim->resolve(broken, RrType::kA);
  EXPECT_EQ(second.header.rcode, dns::Rcode::kServFail);
  EXPECT_EQ(victim->stats().failure_cache_hits, 1u);
  EXPECT_EQ(victim->stats().upstream_queries, upstream_before);
}

// --- Campaign contracts ---

TEST(CampaignNegCache, SynthOffStatsIdenticalToDefaultFactory) {
  const workload::EcosystemSpec spec({.scale = 0.0001, .seed = 42});
  // The 3-argument factory with the default Cloudflare profile IS the
  // pre-ISSUE path; an explicitly-passed default profile must reproduce it
  // stat-for-stat (the CI job byte-diffs the full bench stdout on top).
  const scanner::ParallelCampaignResult golden =
      scanner::run_domain_campaign_parallel(
          spec, scanner::default_world_factory(spec), {.jobs = 2,
                                                       .base_seed = 42});
  const scanner::ParallelCampaignResult explicit_off =
      scanner::run_domain_campaign_parallel(
          spec,
          scanner::default_world_factory(spec, true,
                                         ResolverProfile::cloudflare()),
          {.jobs = 2, .base_seed = 42});
  EXPECT_EQ(golden.stats.scanned, explicit_off.stats.scanned);
  EXPECT_EQ(golden.stats.nsec3, explicit_off.stats.nsec3);
  EXPECT_EQ(golden.stats.iterations.histogram(),
            explicit_off.stats.iterations.histogram());
  EXPECT_EQ(golden.queries_issued, explicit_off.queries_issued);
  EXPECT_EQ(golden.stats.neg_synth_hits, 0u);
  EXPECT_EQ(golden.stats.failure_cache_hits, 0u);
  EXPECT_EQ(explicit_off.stats.neg_synth_hits, 0u);
  EXPECT_EQ(explicit_off.stats.failure_cache_hits, 0u);
}

TEST(CampaignNegCache, SynthCountersJobsInvariant) {
  const workload::EcosystemSpec spec({.scale = 0.0001, .seed = 42});
  ResolverProfile scan = ResolverProfile::cloudflare();
  scan.enable_aggressive(4096, simtime::Duration::from_seconds(5));
  const auto factory = scanner::default_world_factory(spec, true, scan);

  const scanner::ParallelCampaignResult serial =
      scanner::run_domain_campaign_parallel(spec, factory,
                                            {.jobs = 1, .base_seed = 42});
  const scanner::ParallelCampaignResult sharded =
      scanner::run_domain_campaign_parallel(spec, factory,
                                            {.jobs = 4, .base_seed = 42});
  EXPECT_EQ(serial.stats.scanned, sharded.stats.scanned);
  EXPECT_EQ(serial.stats.neg_synth_hits, sharded.stats.neg_synth_hits);
  EXPECT_EQ(serial.stats.failure_cache_hits, sharded.stats.failure_cache_hits);
}

TEST(SweepNegCache, AggressivePanelCountersJobsInvariant) {
  const workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  auto panel =
      workload::figure3_panel(workload::Panel::kClosedV4, 0.001);
  for (auto& entry : panel.entries)
    entry.profile.enable_aggressive(4096,
                                    simtime::Duration::from_seconds(5));
  const auto factory = scanner::default_world_factory(spec, false);

  const scanner::ParallelSweepResult serial =
      scanner::run_resolver_sweep_parallel(panel, factory, "nc-", 1u << 20,
                                           {.jobs = 1, .base_seed = 42});
  const scanner::ParallelSweepResult sharded =
      scanner::run_resolver_sweep_parallel(panel, factory, "nc-", 1u << 20,
                                           {.jobs = 3, .base_seed = 42});
  EXPECT_EQ(serial.stats.probed, sharded.stats.probed);
  EXPECT_EQ(serial.stats.neg_synth_hits, sharded.stats.neg_synth_hits);
  EXPECT_EQ(serial.stats.failure_cache_hits, sharded.stats.failure_cache_hits);
}

}  // namespace
}  // namespace zh::resolver
