// Property tests for the wire codec: randomly generated messages must
// round-trip semantically; random truncations and byte-flips must never
// crash or leak past bounds (the scanner parses untrusted responses).
#include <gtest/gtest.h>

#include <random>

#include "dns/message.hpp"

namespace zh::dns {
namespace {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(engine_() % n);
  }
  bool chance(double p) {
    return std::uniform_real_distribution<double>(0, 1)(engine_) < p;
  }

 private:
  std::mt19937_64 engine_;
};

Name random_name(Rng& rng) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-";
  const std::uint32_t labels = 1 + rng.below(5);
  std::vector<std::string> parts;
  for (std::uint32_t i = 0; i < labels; ++i) {
    const std::uint32_t len = 1 + rng.below(12);
    std::string label;
    for (std::uint32_t j = 0; j < len; ++j)
      label.push_back(kChars[rng.below(sizeof kChars - 1)]);
    parts.push_back(std::move(label));
  }
  const auto name = Name::from_labels(std::move(parts));
  return name ? *name : Name::must_parse("fallback.example");
}

ResourceRecord random_record(Rng& rng) {
  const Name owner = random_name(rng);
  const std::uint32_t ttl = rng.below(86400);
  switch (rng.below(8)) {
    case 0:
      return make_a(owner, ttl, static_cast<std::uint8_t>(rng.below(256)),
                    static_cast<std::uint8_t>(rng.below(256)),
                    static_cast<std::uint8_t>(rng.below(256)),
                    static_cast<std::uint8_t>(rng.below(256)));
    case 1:
      return make_ns(owner, ttl, random_name(rng));
    case 2:
      return make_txt(owner, ttl, "random text " + owner.to_string());
    case 3: {
      SoaRdata soa;
      soa.mname = random_name(rng);
      soa.rname = random_name(rng);
      soa.serial = rng.below(1u << 31);
      return ResourceRecord::make(owner, RrType::kSoa, ttl, soa);
    }
    case 4: {
      CnameRdata cname;
      cname.target = random_name(rng);
      return ResourceRecord::make(owner, RrType::kCname, ttl, cname);
    }
    case 5: {
      Nsec3Rdata nsec3;
      nsec3.iterations = static_cast<std::uint16_t>(rng.below(2501));
      nsec3.flags = rng.chance(0.3) ? Nsec3Rdata::kFlagOptOut : 0;
      nsec3.salt.resize(rng.below(48));
      for (auto& b : nsec3.salt)
        b = static_cast<std::uint8_t>(rng.below(256));
      nsec3.next_hash.resize(20);
      for (auto& b : nsec3.next_hash)
        b = static_cast<std::uint8_t>(rng.below(256));
      nsec3.types = TypeBitmap({RrType::kA, RrType::kRrsig});
      return ResourceRecord::make(owner, RrType::kNsec3, ttl, nsec3);
    }
    case 6: {
      RrsigRdata sig;
      sig.type_covered = static_cast<std::uint16_t>(RrType::kA);
      sig.algorithm = 253;
      sig.labels = static_cast<std::uint8_t>(owner.label_count());
      sig.original_ttl = ttl;
      sig.expiration = rng.below(1u << 31);
      sig.inception = rng.below(1u << 31);
      sig.key_tag = static_cast<std::uint16_t>(rng.below(65536));
      sig.signer = random_name(rng);
      sig.signature.resize(32);
      for (auto& b : sig.signature)
        b = static_cast<std::uint8_t>(rng.below(256));
      return ResourceRecord::make(owner, RrType::kRrsig, ttl, sig);
    }
    default: {
      MxRdata mx;
      mx.preference = static_cast<std::uint16_t>(rng.below(100));
      mx.exchange = random_name(rng);
      return ResourceRecord::make(owner, RrType::kMx, ttl, mx);
    }
  }
}

Message random_message(Rng& rng) {
  Message msg;
  msg.header.id = static_cast<std::uint16_t>(rng.below(65536));
  msg.header.qr = rng.chance(0.7);
  msg.header.aa = rng.chance(0.5);
  msg.header.rd = rng.chance(0.5);
  msg.header.ra = rng.chance(0.5);
  msg.header.ad = rng.chance(0.3);
  msg.header.cd = rng.chance(0.2);
  msg.header.rcode = rng.chance(0.3) ? Rcode::kNxDomain : Rcode::kNoError;
  msg.questions.push_back(
      Question{random_name(rng), RrType::kA, RrClass::kIn});
  const std::uint32_t answers = rng.below(4);
  for (std::uint32_t i = 0; i < answers; ++i)
    msg.answers.push_back(random_record(rng));
  const std::uint32_t auths = rng.below(4);
  for (std::uint32_t i = 0; i < auths; ++i)
    msg.authorities.push_back(random_record(rng));
  const std::uint32_t extra = rng.below(3);
  for (std::uint32_t i = 0; i < extra; ++i)
    msg.additionals.push_back(random_record(rng));
  if (rng.chance(0.7)) {
    Edns edns;
    edns.do_bit = rng.chance(0.5);
    if (rng.chance(0.3))
      edns.add_ede(EdeCode::kUnsupportedNsec3Iterations, "test");
    msg.edns = edns;
  }
  return msg;
}

void expect_equivalent(const Message& a, const Message& b) {
  EXPECT_EQ(a.header.id, b.header.id);
  EXPECT_EQ(a.header.qr, b.header.qr);
  EXPECT_EQ(a.header.aa, b.header.aa);
  EXPECT_EQ(a.header.rd, b.header.rd);
  EXPECT_EQ(a.header.ra, b.header.ra);
  EXPECT_EQ(a.header.ad, b.header.ad);
  EXPECT_EQ(a.header.cd, b.header.cd);
  EXPECT_EQ(a.header.rcode, b.header.rcode);
  ASSERT_EQ(a.questions.size(), b.questions.size());
  for (std::size_t i = 0; i < a.questions.size(); ++i)
    EXPECT_EQ(a.questions[i], b.questions[i]);
  const auto check_section = [](const std::vector<ResourceRecord>& x,
                                const std::vector<ResourceRecord>& y) {
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_TRUE(x[i].name.equals(y[i].name)) << x[i].name.to_string();
      EXPECT_EQ(x[i].type, y[i].type);
      EXPECT_EQ(x[i].ttl, y[i].ttl);
      EXPECT_EQ(x[i].rdata, y[i].rdata) << to_string(x[i].type);
    }
  };
  check_section(a.answers, b.answers);
  check_section(a.authorities, b.authorities);
  check_section(a.additionals, b.additionals);
  EXPECT_EQ(a.edns.has_value(), b.edns.has_value());
  if (a.edns && b.edns) {
    EXPECT_EQ(a.edns->do_bit, b.edns->do_bit);
    EXPECT_EQ(a.edns->options, b.edns->options);
  }
}

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, RoundTripPreservesSemantics) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Message original = random_message(rng);
    const auto wire = original.to_wire();
    const auto decoded = Message::from_wire(
        std::span<const std::uint8_t>(wire.data(), wire.size()));
    ASSERT_TRUE(decoded) << "seed " << GetParam() << " msg " << i;
    expect_equivalent(original, *decoded);
  }
}

TEST_P(CodecProperty, ReencodeIsStable) {
  // decode(encode(m)) re-encoded must parse to the same thing again.
  Rng rng(GetParam() ^ 0xabcdef);
  const Message original = random_message(rng);
  const auto wire1 = original.to_wire();
  const auto once = Message::from_wire(
      std::span<const std::uint8_t>(wire1.data(), wire1.size()));
  ASSERT_TRUE(once);
  const auto wire2 = once->to_wire();
  const auto twice = Message::from_wire(
      std::span<const std::uint8_t>(wire2.data(), wire2.size()));
  ASSERT_TRUE(twice);
  expect_equivalent(*once, *twice);
}

TEST_P(CodecProperty, TruncationNeverCrashes) {
  Rng rng(GetParam() ^ 0x1234);
  const Message original = random_message(rng);
  const auto wire = original.to_wire();
  for (std::size_t len = 0; len <= wire.size(); len += 1 + len / 8) {
    (void)Message::from_wire(std::span<const std::uint8_t>(wire.data(), len));
  }
  SUCCEED();
}

TEST_P(CodecProperty, ByteFlipsNeverCrash) {
  Rng rng(GetParam() ^ 0x5678);
  const Message original = random_message(rng);
  auto wire = original.to_wire();
  for (int flips = 0; flips < 200; ++flips) {
    const std::size_t pos = rng.below(static_cast<std::uint32_t>(wire.size()));
    const std::uint8_t old = wire[pos];
    wire[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    (void)Message::from_wire(
        std::span<const std::uint8_t>(wire.data(), wire.size()));
    wire[pos] = old;
  }
  SUCCEED();
}

TEST_P(CodecProperty, RandomGarbageNeverCrashes) {
  Rng rng(GetParam() ^ 0x9abc);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> garbage(rng.below(300));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.below(256));
    (void)Message::from_wire(
        std::span<const std::uint8_t>(garbage.data(), garbage.size()));
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

}  // namespace
}  // namespace zh::dns
