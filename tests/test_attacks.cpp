// Tests for the attack tooling: NSEC zone walking, the NSEC3 offline
// dictionary attack, and the on-path iteration-count downgrade attack —
// the threats behind NSEC3's existence and RFC 9276 Items 7/12.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "scanner/downgrade.hpp"
#include "scanner/zone_walker.hpp"
#include "testbed/internet.hpp"

namespace zh::scanner {
namespace {

using dns::Name;
using dns::Rcode;
using dns::RrType;
using simnet::IpAddress;

class AttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    internet_ = new testbed::Internet();
    internet_->add_tld("com", testbed::TldConfig{});

    // An NSEC-signed zone with several guessable subdomains: the zone-walk
    // victim.
    testbed::DomainConfig nsec_zone;
    nsec_zone.apex = Name::must_parse("walkme.com");
    nsec_zone.denial = zone::DenialMode::kNsec;
    nsec_zone.standard_records = false;
    for (const char* label : {"mail", "api", "shop", "dev"}) {
      nsec_zone.extra_records.push_back(dns::make_a(
          *nsec_zone.apex.prepended(label), 300, 192, 0, 2, 77));
    }
    nsec_zone.extra_records.push_back(
        dns::make_a(nsec_zone.apex, 300, 192, 0, 2, 70));
    internet_->add_domain(nsec_zone);

    // An NSEC3 zone with the same layout (2 iterations, salted): the
    // dictionary-attack victim.
    testbed::DomainConfig nsec3_zone;
    nsec3_zone.apex = Name::must_parse("hashme.com");
    nsec3_zone.nsec3 = {.iterations = 2, .salt = {0xde, 0xad},
                        .opt_out = false};
    nsec3_zone.standard_records = false;
    for (const char* label : {"mail", "api", "secret-x9"}) {
      nsec3_zone.extra_records.push_back(dns::make_a(
          *nsec3_zone.apex.prepended(label), 300, 192, 0, 2, 78));
    }
    nsec3_zone.extra_records.push_back(
        dns::make_a(nsec3_zone.apex, 300, 192, 0, 2, 71));
    internet_->add_domain(nsec3_zone);

    internet_->build();
    resolver_ = internet_
                    ->make_resolver(resolver::ResolverProfile::cloudflare(),
                                    IpAddress::v4(1, 1, 1, 1))
                    .release();
  }
  static void TearDownTestSuite() {
    delete resolver_;
    delete internet_;
  }

  static testbed::Internet* internet_;
  static resolver::RecursiveResolver* resolver_;
};

testbed::Internet* AttackTest::internet_ = nullptr;
resolver::RecursiveResolver* AttackTest::resolver_ = nullptr;

TEST_F(AttackTest, NsecWalkEnumeratesTheZone) {
  NsecWalker walker(internet_->network(), IpAddress::v4(203, 0, 113, 66),
                    resolver_->address());
  const NsecWalkResult result = walker.walk(Name::must_parse("walkme.com"));
  EXPECT_TRUE(result.complete);

  std::set<std::string> found;
  for (const auto& name : result.names)
    found.insert(name.canonical().to_string());
  for (const char* label : {"mail", "api", "shop", "dev"}) {
    EXPECT_TRUE(found.count(std::string(label) + ".walkme.com.") > 0)
        << label << " not enumerated";
  }
  // One query per chain step — enumeration is linear, the paper's §2.2
  // motivation for NSEC3.
  EXPECT_LE(result.queries, found.size() + 3);
}

TEST_F(AttackTest, NsecWalkFindsNothingOnNsec3Zones) {
  NsecWalker walker(internet_->network(), IpAddress::v4(203, 0, 113, 67),
                    resolver_->address());
  const NsecWalkResult result = walker.walk(Name::must_parse("hashme.com"),
                                            /*max_steps=*/50);
  EXPECT_TRUE(result.names.empty())
      << "NSEC3 zones expose no plain-text chain";
}

TEST_F(AttackTest, Nsec3DictionaryAttackCracksGuessableNames) {
  Nsec3DictionaryAttack attack(internet_->network(),
                               IpAddress::v4(203, 0, 113, 68),
                               resolver_->address());
  const auto result = attack.run(Name::must_parse("hashme.com"),
                                 Nsec3DictionaryAttack::default_dictionary());

  EXPECT_EQ(result.iterations, 2);
  EXPECT_EQ(result.salt.size(), 2u);
  EXPECT_GE(result.chain_hashes, 4u);  // apex + 3 children

  std::set<std::string> cracked;
  for (const auto& c : result.cracked)
    cracked.insert(c.name.canonical().to_string());
  EXPECT_TRUE(cracked.count("hashme.com.") > 0);
  EXPECT_TRUE(cracked.count("mail.hashme.com.") > 0);
  EXPECT_TRUE(cracked.count("api.hashme.com.") > 0);
  // The non-dictionary name stays hidden — hashing helps only for these.
  EXPECT_FALSE(cracked.count("secret-x9.hashme.com.") > 0);
}

TEST_F(AttackTest, AttackerCostScalesWithIterationsLikeValidators) {
  Nsec3DictionaryAttack attack(internet_->network(),
                               IpAddress::v4(203, 0, 113, 69),
                               resolver_->address());
  const auto dictionary = Nsec3DictionaryAttack::default_dictionary();
  const auto result = attack.run(Name::must_parse("hashme.com"), dictionary);
  ASSERT_GT(result.offline_hashes, 0u);
  // 2 additional iterations → 3 SHA-1 applications per short guess.
  EXPECT_GE(result.offline_sha1_blocks, result.offline_hashes * 3);
  EXPECT_LE(result.offline_sha1_blocks, result.offline_hashes * 6);
}

TEST_F(AttackTest, DowngradeAttackFoiledByItem7Compliance) {
  auto victim = internet_->make_resolver(
      resolver::ResolverProfile::bind9_2021(),  // Item 7 compliant
      IpAddress::v4(203, 0, 113, 70));
  internet_->network().set_tamper(
      make_downgrade_attacker(Name::must_parse("hashme.com"), 2000));

  const auto response = victim->resolve(
      Name::must_parse("ghost.hashme.com"), RrType::kA);
  internet_->network().set_tamper(nullptr);

  // Forged iteration count exceeds the limit, but the RRSIG check fires
  // first: the resolver fails closed instead of downgrading.
  EXPECT_EQ(response.header.rcode, Rcode::kServFail);
  EXPECT_GT(internet_->network().tampered_responses(), 0u);
}

TEST_F(AttackTest, DowngradeAttackSucceedsAgainstItem7Violator) {
  auto victim = internet_->make_resolver(
      resolver::ResolverProfile::item7_violator(),
      IpAddress::v4(203, 0, 113, 71));
  internet_->network().set_tamper(
      make_downgrade_attacker(Name::must_parse("hashme.com"), 2000));

  const auto response = victim->resolve(
      Name::must_parse("ghost2.hashme.com"), RrType::kA);
  internet_->network().set_tamper(nullptr);

  // The victim trusted the forged count: insecure NXDOMAIN, DNSSEC off.
  EXPECT_EQ(response.header.rcode, Rcode::kNxDomain);
  EXPECT_FALSE(response.header.ad);
}

TEST_F(AttackTest, WithoutAttackerTheSameQueryValidates) {
  auto victim = internet_->make_resolver(
      resolver::ResolverProfile::bind9_2021(),
      IpAddress::v4(203, 0, 113, 72));
  const auto response = victim->resolve(
      Name::must_parse("ghost3.hashme.com"), RrType::kA);
  EXPECT_EQ(response.header.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(response.header.ad);
}

}  // namespace
}  // namespace zh::scanner
