// Tests for the synthetic ecosystem spec: determinism, calibration of the
// population statistics against the paper's §5.1 numbers, the TLD census,
// the popularity list, and the Figure 3 resolver panel mixes.
#include <gtest/gtest.h>

#include <set>

#include "analysis/stats.hpp"
#include "workload/popularity.hpp"
#include "workload/resolver_population.hpp"
#include "workload/spec.hpp"

namespace zh::workload {
namespace {

class SpecTest : public ::testing::Test {
 protected:
  static const EcosystemSpec& spec() {
    static EcosystemSpec instance({.scale = 0.001, .seed = 42});
    return instance;
  }
};

TEST_F(SpecTest, Deterministic) {
  EcosystemSpec other({.scale = 0.001, .seed = 42});
  for (const std::size_t index : {0u, 17u, 300u, 5000u, 99999u}) {
    const DomainProfile a = spec().domain(index);
    const DomainProfile b = other.domain(index);
    EXPECT_TRUE(a.apex.equals(b.apex));
    EXPECT_EQ(a.dnssec, b.dnssec);
    EXPECT_EQ(a.nsec3.iterations, b.nsec3.iterations);
    EXPECT_EQ(a.nsec3.salt, b.nsec3.salt);
  }
}

TEST_F(SpecTest, IndexRoundTrip) {
  for (const std::size_t index : {0u, 42u, 1234u, 100000u}) {
    const DomainProfile profile = spec().domain(index);
    const auto back = spec().index_of(profile.apex);
    ASSERT_TRUE(back) << profile.apex.to_string();
    EXPECT_EQ(*back, index);
  }
  EXPECT_FALSE(spec().index_of(dns::Name::must_parse("www.example.com")));
  EXPECT_FALSE(spec().index_of(dns::Name::must_parse("x999.com")));
}

TEST_F(SpecTest, PopulationRatesMatchPaper) {
  std::uint64_t dnssec = 0, nsec3 = 0, zero_iter = 0, no_salt = 0, both = 0,
                opt_out = 0, le25 = 0;
  const std::size_t n = spec().domain_count();
  for (std::size_t i = 0; i < n; ++i) {
    const DomainProfile profile = spec().domain(i);
    if (!profile.dnssec) continue;
    ++dnssec;
    if (profile.denial != zone::DenialMode::kNsec3) continue;
    ++nsec3;
    if (profile.nsec3.iterations == 0) ++zero_iter;
    if (profile.nsec3.salt.empty()) ++no_salt;
    if (profile.nsec3.iterations == 0 && profile.nsec3.salt.empty()) ++both;
    if (profile.nsec3.opt_out) ++opt_out;
    if (profile.nsec3.iterations <= 25) ++le25;
  }
  const double total = static_cast<double>(n);
  // Paper: 8.8 % DNSSEC-enabled, 58.3 % of those NSEC3-enabled.
  EXPECT_NEAR(dnssec / total, 0.088, 0.004);
  EXPECT_NEAR(static_cast<double>(nsec3) / dnssec, 0.583, 0.01);
  // Items 2/3: 12.2 % zero iterations, 8.6 % saltless, 6.4 % opt-out.
  EXPECT_NEAR(static_cast<double>(zero_iter) / nsec3, 0.122, 0.01);
  EXPECT_NEAR(static_cast<double>(no_salt) / nsec3, 0.086, 0.01);
  EXPECT_NEAR(static_cast<double>(opt_out) / nsec3, 0.064, 0.01);
  // 99.9 % at most 25 additional iterations at full scale. The planted
  // long-tail specials keep their absolute counts under scaling (DESIGN.md
  // §1), so at 1:1000 they weigh ~3× more — hence the relaxed bound here.
  EXPECT_GT(static_cast<double>(le25) / nsec3, 0.995);
  // Both-compliant exists but is small (global analogue of Fig. 2's 12.7 %
  // popular-domain number is lower).
  EXPECT_GT(both, 0u);
}

TEST_F(SpecTest, LongTailSpecialsPlanted) {
  std::uint64_t over150 = 0, at500 = 0, salt_over45 = 0, salt160 = 0;
  // Specials occupy the first indexes by construction.
  for (std::size_t i = 0; i < 300; ++i) {
    const DomainProfile profile = spec().domain(i);
    if (profile.denial != zone::DenialMode::kNsec3) continue;
    if (profile.nsec3.iterations > 150) ++over150;
    if (profile.nsec3.iterations == 500) ++at500;
    if (profile.nsec3.salt.size() > 45) ++salt_over45;
    if (profile.nsec3.salt.size() == 160) ++salt160;
  }
  EXPECT_EQ(over150, 43u);   // §5.1: 43 domains above 150 iterations
  EXPECT_EQ(at500, 12u);     // 12 at 500 — the maximum observed
  EXPECT_EQ(salt_over45, 170u);  // 170 salts above 45 bytes
  EXPECT_EQ(salt160, 9u);    // 9 at 160 bytes
}

TEST_F(SpecTest, GiantSaltTailServedBySingleOperator) {
  std::size_t op = SIZE_MAX;
  for (std::size_t i = 0; i < 300; ++i) {
    const DomainProfile profile = spec().domain(i);
    if (profile.nsec3.salt.size() <= 45) continue;
    if (op == SIZE_MAX) op = profile.operator_index;
    EXPECT_EQ(profile.operator_index, op);
  }
  ASSERT_NE(op, SIZE_MAX);
  EXPECT_EQ(spec().operators()[op].name, "giant-salt-op");
}

TEST_F(SpecTest, OperatorSharesFollowTable2) {
  analysis::FreqTable by_operator;
  for (std::size_t i = 0; i < spec().domain_count(); ++i) {
    const DomainProfile profile = spec().domain(i);
    if (profile.denial != zone::DenialMode::kNsec3) continue;
    by_operator.add(spec().operators()[profile.operator_index].name);
  }
  // Table 2 headline rows (tolerances absorb sampling noise at 1:1000).
  EXPECT_NEAR(by_operator.share("squarespace"), 0.394, 0.02);
  EXPECT_NEAR(by_operator.share("one-com"), 0.095, 0.01);
  EXPECT_NEAR(by_operator.share("ovhcloud"), 0.084, 0.01);
  EXPECT_NEAR(by_operator.share("wix"), 0.050, 0.01);
  EXPECT_NEAR(by_operator.share("hostpoint"), 0.013, 0.005);
}

TEST_F(SpecTest, TldCensusMatchesPaper) {
  std::uint64_t dnssec = 0, nsec3 = 0, zero = 0, at100 = 0, no_salt = 0,
                salt8 = 0, salt10 = 0, opt_out = 0, identity = 0;
  for (const TldProfile& tld : spec().tlds()) {
    if (tld.dnssec) ++dnssec;
    if (!tld.nsec3) continue;
    ++nsec3;
    if (tld.iterations == 0) ++zero;
    if (tld.iterations == 100) ++at100;
    if (tld.salt_len == 0) ++no_salt;
    if (tld.salt_len == 8) ++salt8;
    if (tld.salt_len == 10) ++salt10;
    if (tld.opt_out) ++opt_out;
    if (tld.identity_digital) ++identity;
  }
  EXPECT_EQ(spec().tlds().size(), 1449u);
  EXPECT_EQ(dnssec, 1354u);
  EXPECT_EQ(nsec3, 1302u);
  EXPECT_EQ(zero, 688u);
  EXPECT_EQ(at100, 447u);
  EXPECT_EQ(identity, 447u);
  EXPECT_EQ(salt8, 558u);
  EXPECT_EQ(salt10, 7u);
  EXPECT_NEAR(static_cast<double>(no_salt) / nsec3, 672.0 / 1302.0, 0.03);
  EXPECT_NEAR(static_cast<double>(opt_out) / nsec3, 0.854, 0.02);
}

TEST_F(SpecTest, PopularityListMatchesTrancoIntersections) {
  PopularityList list(spec(), {.size = 10000, .seed = 99});
  ASSERT_GE(list.size(), 9000u);

  std::uint64_t dnssec = 0, nsec3 = 0, zero = 0, nosalt = 0, both = 0;
  for (const RankedDomain& entry : list.entries()) {
    const DomainProfile profile = spec().domain(entry.domain_index);
    if (!profile.dnssec) continue;
    ++dnssec;
    if (profile.denial != zone::DenialMode::kNsec3) continue;
    ++nsec3;
    if (profile.nsec3.iterations == 0) ++zero;
    if (profile.nsec3.salt.empty()) ++nosalt;
    if (profile.nsec3.iterations == 0 && profile.nsec3.salt.empty()) ++both;
  }
  const double total = static_cast<double>(list.size());
  EXPECT_NEAR(dnssec / total, 0.0666, 0.01);          // 66.6 K / 1 M
  EXPECT_NEAR(static_cast<double>(nsec3) / dnssec, 0.408, 0.05);
  EXPECT_NEAR(static_cast<double>(zero) / nsec3, 0.228, 0.06);
  EXPECT_NEAR(static_cast<double>(nosalt) / nsec3, 0.236, 0.06);
  EXPECT_NEAR(static_cast<double>(both) / nsec3, 0.127, 0.05);
}

TEST_F(SpecTest, PopularityListUniqueIndexes) {
  PopularityList list(spec(), {.size = 5000, .seed = 7});
  std::set<std::size_t> seen;
  for (const RankedDomain& entry : list.entries()) {
    EXPECT_TRUE(seen.insert(entry.domain_index).second)
        << "rank list must not repeat domains";
  }
}

TEST(PanelSpecTest, WeightsRoughlyCoverBehaviourGroups) {
  const PanelSpec panel = figure3_panel(Panel::kOpenV4, 0.01);
  double item6 = 0, item8 = 0, total = 0;
  for (const auto& entry : panel.entries) {
    total += entry.weight;
    const auto& policy = entry.profile.policy;
    const bool forwards_to_servfail =
        entry.forward_via == "cloudflare-1.1.1.1" ||
        entry.forward_via == "cisco-opendns";
    const bool forwards_to_insecure = entry.forward_via == "google-public-dns";
    if (policy.servfail_limit || forwards_to_servfail) {
      item8 += entry.weight;
    } else if (policy.insecure_limit || forwards_to_insecure) {
      item6 += entry.weight;
    }
  }
  // §5.2: 59.9 % Item 6, 18.4 % Item 8, 78.3 % limiting overall.
  EXPECT_NEAR(item6 / total, 0.599, 0.03);
  EXPECT_NEAR(item8 / total, 0.184, 0.03);
}

TEST(PanelSpecTest, PanelSizesScale) {
  EXPECT_EQ(figure3_panel(Panel::kOpenV4, 0.01).validator_count, 1052u);
  EXPECT_EQ(figure3_panel(Panel::kOpenV6, 0.01).validator_count, 68u);
  EXPECT_EQ(figure3_panel(Panel::kClosedV4, 0.01).validator_count, 1236u);
  EXPECT_EQ(figure3_panel(Panel::kClosedV6, 0.01).validator_count, 689u);
}

}  // namespace
}  // namespace zh::workload
