// Micro-benchmarks (google-benchmark): DNS wire codec — encode/decode of
// the message shapes the measurement pipeline handles millions of times.
//
// Every benchmark reports an `allocs/op` counter (counting operator new
// hook, bench_alloc.hpp). BM_DecodeViewNxdomainWithProof is the zero-copy
// path and must stay at 0 allocs/op in steady state — the allocation gate in
// tests/test_wire_view.cpp and CI pins that.
#define ZH_BENCH_COUNT_ALLOCS
#include "bench_alloc.hpp"

#include <benchmark/benchmark.h>

#include "dns/arena.hpp"
#include "dns/message.hpp"
#include "dns/wire_view.hpp"

namespace {

using zh::dns::Message;
using zh::dns::MessageView;
using zh::dns::MonotonicArena;
using zh::dns::Name;
using zh::dns::RrType;

/// Reports the hook's allocation delta as a per-iteration counter.
class AllocScope {
 public:
  explicit AllocScope(benchmark::State& state)
      : state_(state), before_(zh::bench::alloc_stats()) {}
  ~AllocScope() {
    const zh::bench::AllocStats after = zh::bench::alloc_stats();
    state_.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(after.allocations - before_.allocations) /
        static_cast<double>(state_.iterations() ? state_.iterations() : 1));
  }

 private:
  benchmark::State& state_;
  zh::bench::AllocStats before_;
};

Message nxdomain_response_with_nsec3() {
  Message query = Message::make_query(
      1, Name::must_parse("probe.nx.it-10.rfc9276-in-the-wild.com"),
      RrType::kA);
  Message response = Message::make_response(query);
  response.header.rcode = zh::dns::Rcode::kNxDomain;
  response.header.aa = true;
  response.authorities.push_back(zh::dns::make_soa(
      Name::must_parse("it-10.rfc9276-in-the-wild.com"), 3600,
      Name::must_parse("ns1.it-10.rfc9276-in-the-wild.com"), 1));
  for (int i = 0; i < 3; ++i) {
    zh::dns::Nsec3Rdata nsec3;
    nsec3.iterations = 10;
    nsec3.next_hash.assign(20, static_cast<std::uint8_t>(i * 40 + 7));
    nsec3.types = zh::dns::TypeBitmap({RrType::kA, RrType::kRrsig});
    response.authorities.push_back(zh::dns::ResourceRecord::make(
        Name::must_parse(std::string(32, static_cast<char>('a' + i)) +
                         ".it-10.rfc9276-in-the-wild.com"),
        RrType::kNsec3, 3600, nsec3));
    zh::dns::RrsigRdata sig;
    sig.type_covered = static_cast<std::uint16_t>(RrType::kNsec3);
    sig.signer = Name::must_parse("it-10.rfc9276-in-the-wild.com");
    sig.signature.assign(32, 0x42);
    response.authorities.push_back(zh::dns::ResourceRecord::make(
        response.authorities.back().name, RrType::kRrsig, 3600, sig));
  }
  return response;
}

void BM_EncodeQuery(benchmark::State& state) {
  const Message query = Message::make_query(
      1, Name::must_parse("www.example.com"), RrType::kA);
  AllocScope allocs(state);
  for (auto _ : state) benchmark::DoNotOptimize(query.to_wire());
}
BENCHMARK(BM_EncodeQuery);

void BM_EncodeNxdomainWithProof(benchmark::State& state) {
  const Message response = nxdomain_response_with_nsec3();
  {
    AllocScope allocs(state);
    for (auto _ : state) benchmark::DoNotOptimize(response.to_wire());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(response.to_wire().size()));
}
BENCHMARK(BM_EncodeNxdomainWithProof);

void BM_WireSizeNxdomainWithProof(benchmark::State& state) {
  // The simnet/frontend truncation decision: size without serialising.
  const Message response = nxdomain_response_with_nsec3();
  AllocScope allocs(state);
  for (auto _ : state) benchmark::DoNotOptimize(response.wire_size());
}
BENCHMARK(BM_WireSizeNxdomainWithProof);

void BM_DecodeNxdomainWithProof(benchmark::State& state) {
  const auto wire = nxdomain_response_with_nsec3().to_wire();
  {
    AllocScope allocs(state);
    for (auto _ : state) {
      benchmark::DoNotOptimize(Message::from_wire(
          std::span<const std::uint8_t>(wire.data(), wire.size())));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeNxdomainWithProof);

void BM_DecodeViewNxdomainWithProof(benchmark::State& state) {
  // Zero-copy path: parse in place over the buffer, arena reset per query.
  // Steady state (after the first iteration's slab) this is 0 allocs/op.
  const auto wire = nxdomain_response_with_nsec3().to_wire();
  MonotonicArena arena;
  {
    // Warm the arena outside the timed/counted region, as a scanning loop
    // is warm after its first response.
    const auto parsed = MessageView::parse(
        std::span<const std::uint8_t>(wire.data(), wire.size()), arena);
    benchmark::DoNotOptimize(parsed.view.has_value());
  }
  AllocScope allocs(state);
  for (auto _ : state) {
    arena.reset();
    benchmark::DoNotOptimize(MessageView::parse(
        std::span<const std::uint8_t>(wire.data(), wire.size()), arena));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeViewNxdomainWithProof);

void BM_RoundTripQuery(benchmark::State& state) {
  const Message query = Message::make_query(
      7, Name::must_parse("d123456.com"), RrType::kDnskey);
  AllocScope allocs(state);
  for (auto _ : state) {
    const auto wire = query.to_wire();
    benchmark::DoNotOptimize(Message::from_wire(
        std::span<const std::uint8_t>(wire.data(), wire.size())));
  }
}
BENCHMARK(BM_RoundTripQuery);

void BM_NameCanonicalCompare(benchmark::State& state) {
  const Name a = Name::must_parse("yljkjljk.a.example.com");
  const Name b = Name::must_parse("z.a.example.com");
  AllocScope allocs(state);
  for (auto _ : state)
    benchmark::DoNotOptimize(Name::canonical_compare(a, b));
}
BENCHMARK(BM_NameCanonicalCompare);

}  // namespace

BENCHMARK_MAIN();
