// Scan-engine throughput: blocking loop vs async state machines, one core.
//
// The async engine's claim (ISSUE 6) is ZDNS-shaped: one worker thread
// multiplexing thousands of per-query state machines over a timer wheel
// sustains a far higher *simulated* scan rate than the blocking loop,
// whose every wait — RTTs under the latency model, retransmission
// timeouts — serializes behind every other item's. Both engines produce
// byte-identical campaign artefacts (tests/test_async_engine.cpp), so this
// bench measures pure throughput on one worker:
//
//   * virtual throughput — campaign queries (and domains) per simulated
//     second: total virtual makespan for the blocking loop, admission-to-
//     last-settlement for the async engine. This is the ZDNS number; the
//     async engine wins by overlapping items' waits.
//   * wall throughput — domains per host-CPU second, which pins the
//     engine's bookkeeping overhead (wheel, state machines, flow resumes).
//
// Emits BENCH_throughput.json (CI uploads it as an artifact) with one row
// per (engine, max-inflight) cell, plus the headline speedup: async at
// max-inflight 1024 must clear >= 5x the blocking engine's virtual
// queries/sec (the ISSUE acceptance bar).
//
// Flags (bench_common.hpp): --latency/--jitter reshape the link (default
// 20 ms +/- 5 ms), --loss adds retransmission waits, --retries/--timeout
// shape the client policy. ZH_LIMIT caps the domains scanned per cell
// (default 2000); ZH_SCALE must supply at least that many.
//
// Each cell also reports allocs/query (counting operator-new hook,
// bench_alloc.hpp): heap allocations during the measured scan divided by
// wire queries issued. The arena/view/slot-reuse work (ISSUE 10) drives the
// *per-exchange* layers to zero steady-state allocations; the whole-stack
// number reported here includes the resolver/server machinery above them,
// so it is small and flat, not literally zero.
#define ZH_BENCH_COUNT_ALLOCS
#include "bench_alloc.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "scanner/campaign.hpp"

namespace {

struct Cell {
  const char* engine;
  std::size_t max_inflight;
  std::uint64_t domains = 0;
  std::uint64_t queries = 0;
  std::uint64_t allocations = 0;  // operator-new calls in the measured scan
  double virtual_seconds = 0.0;
  double wall_seconds = 0.0;

  double allocs_per_query() const {
    return queries > 0
               ? static_cast<double>(allocations) / static_cast<double>(queries)
               : 0.0;
  }

  double per_virtual(std::uint64_t n) const {
    return virtual_seconds > 0.0 ? static_cast<double>(n) / virtual_seconds
                                 : 0.0;
  }
  double per_wall(std::uint64_t n) const {
    return wall_seconds > 0.0 ? static_cast<double>(n) / wall_seconds : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace zh;
  bench::BenchFlags flags = bench::parse_flags(argc, argv);
  // Throughput is about overlapping waits: default to a realistic link so
  // the virtual clock genuinely moves (matching bench_latency_timeout).
  if (flags.latency_ms <= 0.0 && flags.jitter_ms <= 0.0) {
    flags.latency_ms = 20.0;
    flags.jitter_ms = 5.0;
  }
  const std::uint64_t seed = bench::env_u64("ZH_SEED", 42);
  const std::size_t limit =
      static_cast<std::size_t>(bench::env_u64("ZH_LIMIT", 2000));

  const std::size_t windows[] = {1, 64, 1024, 8192};
  std::vector<Cell> cells;
  cells.push_back({"blocking", 1});
  for (const std::size_t window : windows) cells.push_back({"async", window});

  std::printf("# one worker thread, %zu domains per cell, link %.0f ms ± "
              "%.0f ms, service 1 µs/SHA-1 block, loss %.0f%%, retry %u "
              "attempts\n",
              limit, flags.latency_ms, flags.jitter_ms, 100.0 * flags.loss,
              flags.retry.attempts);
  std::printf("%9s %12s %9s %10s %13s %13s %12s %9s\n", "engine",
              "max-inflight", "domains", "virt (s)", "dom/virt-s", "q/virt-s",
              "dom/wall-s", "allocs/q");

  for (Cell& cell : cells) {
    // A fresh world per cell: every engine/window starts from the same
    // cold resolver caches and a zeroed virtual clock.
    bench::World world = bench::build_world();
    simnet::Network& network = world.internet->network();
    network.set_latency_model(flags.latency_model(seed));
    network.set_service_model(
        {.per_sha1_block = simtime::Duration::from_us(1)});
    if (flags.loss > 0.0) network.set_loss(flags.loss, seed);

    scanner::DomainCampaign campaign(*world.internet, *world.spec,
                                     world.scan_resolver->address(),
                                     simnet::IpAddress::v4(198, 18, 0, 1),
                                     flags.retry);
    // Warm the TLD/operator caches outside the measured window (a limit-0
    // run performs exactly the warm-up and scans nothing): the warm phase
    // is a serial one-off identical in both engines, and folding its ~one
    // exchange per TLD into the makespan would just Amdahl-cap the
    // comparison at the warm/scan ratio instead of measuring the engines.
    campaign.run_shard(0, 1, /*limit=*/0);
    const simtime::Duration virtual_start = network.clock().now();
    const auto wall_start = std::chrono::steady_clock::now();
    const zh::bench::AllocStats allocs_before = zh::bench::alloc_stats();
    if (cell.max_inflight == 1 && cell.engine[0] == 'b') {
      campaign.run_shard(0, 1, limit);
    } else {
      campaign.run_shard_async(0, 1, limit, /*stride=*/1, cell.max_inflight);
    }
    cell.allocations =
        zh::bench::alloc_stats().allocations - allocs_before.allocations;
    cell.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    // Blocking items run back-to-back, so clock-now minus start is the
    // serial makespan; the async engine leaves the clock at the last
    // settlement, so the same delta is the overlapped makespan. Both
    // include the (identical, one-off) TLD cache warm-up.
    cell.virtual_seconds =
        static_cast<double>((network.clock().now() - virtual_start).nanos()) /
        1e9;
    cell.domains = campaign.stats().scanned;
    cell.queries = campaign.queries_issued();

    std::printf("%9s %12zu %9llu %10.2f %13.1f %13.1f %12.1f %9.1f\n",
                cell.engine, cell.max_inflight,
                static_cast<unsigned long long>(cell.domains),
                cell.virtual_seconds, cell.per_virtual(cell.domains),
                cell.per_virtual(cell.queries), cell.per_wall(cell.domains),
                cell.allocs_per_query());
  }

  const Cell& blocking = cells.front();
  const Cell* async_1024 = nullptr;
  for (const Cell& cell : cells)
    if (cell.max_inflight == 1024 && cell.engine[0] == 'a') async_1024 = &cell;
  const double speedup =
      async_1024 && blocking.per_virtual(blocking.queries) > 0.0
          ? async_1024->per_virtual(async_1024->queries) /
                blocking.per_virtual(blocking.queries)
          : 0.0;
  std::printf("# async@1024 virtual queries/sec speedup over blocking: "
              "%.1fx (acceptance floor 5x)\n",
              speedup);

  const char* out_path = std::getenv("ZH_OUT");
  if (!out_path || !*out_path) out_path = "BENCH_throughput.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (!out) {
    std::fprintf(stderr, "FAILED writing %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"throughput\",\n");
  std::fprintf(out, "  \"limit\": %zu,\n  \"latency_ms\": %g,\n"
               "  \"jitter_ms\": %g,\n  \"loss\": %g,\n  \"retries\": %u,\n",
               limit, flags.latency_ms, flags.jitter_ms, flags.loss,
               flags.retry.attempts);
  std::fprintf(out, "  \"speedup_async1024_vs_blocking\": %.3f,\n", speedup);
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    std::fprintf(
        out,
        "    {\"engine\": \"%s\", \"max_inflight\": %zu, "
        "\"domains\": %llu, \"queries\": %llu, "
        "\"virtual_seconds\": %.6f, \"wall_seconds\": %.3f, "
        "\"domains_per_virtual_sec\": %.3f, "
        "\"queries_per_virtual_sec\": %.3f, "
        "\"domains_per_wall_sec\": %.3f, "
        "\"queries_per_wall_sec\": %.3f, "
        "\"allocations\": %llu, "
        "\"allocs_per_query\": %.3f}%s\n",
        cell.engine, cell.max_inflight,
        static_cast<unsigned long long>(cell.domains),
        static_cast<unsigned long long>(cell.queries), cell.virtual_seconds,
        cell.wall_seconds, cell.per_virtual(cell.domains),
        cell.per_virtual(cell.queries), cell.per_wall(cell.domains),
        cell.per_wall(cell.queries),
        static_cast<unsigned long long>(cell.allocations),
        cell.allocs_per_query(), i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# written %s\n", out_path);
  return speedup >= 5.0 ? 0 : 3;
}
