// Aggressive negative caching (RFC 8198) as an amplification *deflation*:
// water-torture NXDOMAIN mixes against a validating resolver, with the
// NSEC3 interval cache off vs on (ISSUE 9).
//
// CVE-2023-50868's cost model is per-query: every unique junk name forces
// the resolver to fetch a closest-encloser proof and grind its NSEC3
// hashes. A small zone's chain is only a handful of intervals, so a warm
// aggressive cache covers the entire hash space after the first few
// proofs — every later unique name is answered from cache (RFC 8198 §5.1)
// with zero authoritative fetches and zero new hash work. The bench
// measures that deflation directly: SHA-1 blocks and upstream queries per
// client query, synth-off vs synth-on, over a (zone kind × iterations)
// grid. Opt-out zones are the control: their spans must never prove
// NXDOMAIN (§5.2 caveat), so synth-on absorbs nothing there and the
// refusal counter — the "breakage rate" the cache would have caused had
// it ignored the flag — is nonzero.
//
// Determinism: every cell is a fresh world, query names and flow keys are
// cell-tagged, and cells run in fixed grid order; the table and JSON are
// byte-identical run to run for a given flag set.
//
// Emits BENCH_aggressive_cache.json (CI uploads a reduced grid). Exit 3
// unless, at the 150-iteration cover zone: synth-on deflates SHA-1
// blocks/query by > 1.1x, absorbs at least half the upstream queries, and
// the opt-out control shows a nonzero refusal rate.
//
// Flags (bench_common.hpp vocabulary): --latency/--jitter shape the link
// (default 10 ms clean), --neg-cache-cap / --failure-cache-ttl size the
// caches under test; --aggressive-nsec is ignored — the on/off axis IS the
// grid. ZH_LIMIT caps measured queries per cell (default 200).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "crypto/cost_meter.hpp"
#include "simnet/exchange.hpp"

namespace {

using namespace zh;

constexpr std::uint16_t kTiers[] = {0, 50, 150};

struct Cell {
  bool opt_out = false;
  std::uint16_t iterations = 0;
  bool synth = false;

  std::uint64_t queries = 0;
  std::uint64_t upstream = 0;      // authoritative fetches in the window
  std::uint64_t sha1_blocks = 0;   // CostMeter delta across the window
  std::uint64_t synth_hits = 0;
  std::uint64_t optout_refusals = 0;
  std::uint64_t nxdomains = 0;     // sanity: every probe must deny
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double per_query(std::uint64_t n) const {
    return queries ? static_cast<double>(n) / static_cast<double>(queries)
                   : 0.0;
  }
};

void run_cell(Cell& cell, const bench::BenchFlags& flags, std::uint64_t seed,
              std::size_t limit) {
  // A fresh world per cell: the victim's caches (answer, aggressive,
  // failure) must not leak across the grid.
  testbed::Internet internet;
  testbed::DomainConfig config;
  config.apex = dns::Name::must_parse(cell.opt_out ? "wt-optout.example"
                                                   : "wt-cover.example");
  config.nsec3 = {.iterations = cell.iterations,
                  .salt = {0xab, 0xcd},
                  .opt_out = cell.opt_out};
  internet.add_domain(config);
  internet.build();

  // The victim: a permissive validator (no iteration cut-off — it grinds
  // even the 150-iteration proofs in full, which is what makes the
  // deflation visible), with the aggressive caches switched on in the
  // synth cells only.
  resolver::ResolverProfile profile = resolver::ResolverProfile::permissive();
  if (cell.synth)
    profile.enable_aggressive(
        flags.neg_cache_cap,
        simtime::Duration::from_ms(flags.failure_cache_ttl_ms));
  const auto victim =
      internet.make_resolver(profile, simnet::IpAddress::v4(10, 77, 0, 1));

  simnet::Network& network = internet.network();
  network.set_latency_model(flags.latency_model(seed));
  network.set_service_model({.per_sha1_block = simtime::Duration::from_us(1)});

  char prefix[40];
  std::snprintf(prefix, sizeof prefix, "ac-%c-%03u-%d",
                cell.opt_out ? 'o' : 'c', cell.iterations,
                cell.synth ? 1 : 0);

  const auto probe = [&](const char* tag, std::size_t i) {
    char token[64];
    std::snprintf(token, sizeof token, "%s-%s%04zu", prefix, tag, i);
    network.set_flow(simtime::fnv1a(token));
    const auto qname = *config.apex.prepended(token);
    return simnet::exchange(
        network, simnet::IpAddress::v4(203, 0, 113, 7), victim->address(),
        dns::Message::make_query(static_cast<std::uint16_t>(1 + i), qname,
                                 dns::RrType::kA, /*dnssec_ok=*/true),
        flags.retry);
  };

  // Warm-up, outside the measured window: root/TLD/DNSKEY fetches plus —
  // in the synth cells — the proofs that populate the interval cache. The
  // zone's chain is a handful of intervals, so a few unique junk names
  // cover the whole hash space (cache-warm repeated-cover mix).
  for (std::size_t i = 0; i < 8; ++i) (void)probe("warm", i);

  const resolver::ResolverStats& stats = victim->stats();
  const std::uint64_t upstream_before = stats.upstream_queries;
  const std::uint64_t synth_before = stats.neg_synth_hits;
  const std::uint64_t refusal_before = stats.neg_synth_optout_refusals;
  const std::uint64_t sha1_before = crypto::CostMeter::sha1_blocks();

  analysis::Ecdf elapsed_us;
  for (std::size_t i = 0; i < limit; ++i) {
    const simnet::ExchangeOutcome out = probe("nx", i);
    ++cell.queries;
    elapsed_us.add(out.elapsed.micros());
    if (out.response && out.response->header.rcode == dns::Rcode::kNxDomain)
      ++cell.nxdomains;
  }

  cell.upstream = stats.upstream_queries - upstream_before;
  cell.synth_hits = stats.neg_synth_hits - synth_before;
  cell.optout_refusals = stats.neg_synth_optout_refusals - refusal_before;
  cell.sha1_blocks = crypto::CostMeter::sha1_blocks() - sha1_before;
  cell.p50_ms = static_cast<double>(elapsed_us.percentile(0.50)) / 1000.0;
  cell.p99_ms = static_cast<double>(elapsed_us.percentile(0.99)) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::parse_flags(argc, argv);
  // The deflation story is about work absorbed, not link quality: default
  // to a clean 10 ms link so the p50/p99 columns show the fetch savings.
  if (flags.latency_ms <= 0.0 && flags.jitter_ms <= 0.0)
    flags.latency_ms = 10.0;
  const std::uint64_t seed = bench::env_u64("ZH_SEED", 42);
  const std::size_t limit =
      static_cast<std::size_t>(bench::env_u64("ZH_LIMIT", 200));

  std::vector<Cell> cells;
  for (const bool opt_out : {false, true})
    for (const std::uint16_t tier : kTiers)
      for (const bool synth : {false, true})
        cells.push_back({opt_out, tier, synth});

  std::printf("# water-torture: %zu unique junk names per cell (8 warm), "
              "link %.1f ms RTT, service 1 µs/SHA-1 block\n"
              "# victim: permissive validator, neg-cache cap %zu, failure "
              "TTL %lld ms\n",
              limit, flags.latency_ms, flags.neg_cache_cap,
              static_cast<long long>(flags.failure_cache_ttl_ms));
  std::printf("%8s %8s %6s %9s %12s %10s %10s %10s %10s\n", "zone", "add.it.",
              "synth", "upstream", "sha1/query", "synth-hit", "refusals",
              "p50", "p99");
  for (Cell& cell : cells) {
    run_cell(cell, flags, seed, limit);
    std::printf("%8s %8u %6s %9llu %12.1f %10llu %10llu %7.2f ms %7.2f ms\n",
                cell.opt_out ? "opt-out" : "cover", cell.iterations,
                cell.synth ? "on" : "off",
                static_cast<unsigned long long>(cell.upstream),
                cell.per_query(cell.sha1_blocks),
                static_cast<unsigned long long>(cell.synth_hits),
                static_cast<unsigned long long>(cell.optout_refusals),
                cell.p50_ms, cell.p99_ms);
    if (cell.nxdomains != cell.queries)
      std::printf("# WARNING: %llu/%llu probes did not come back NXDOMAIN\n",
                  static_cast<unsigned long long>(cell.nxdomains),
                  static_cast<unsigned long long>(cell.queries));
  }

  // Headline pair: the 150-iteration cover zone, off vs on — the
  // CVE-2023-50868 mix the ISSUE acceptance bar is set on.
  const auto find_cell = [&](bool opt_out, std::uint16_t it,
                             bool synth) -> const Cell& {
    for (const Cell& cell : cells)
      if (cell.opt_out == opt_out && cell.iterations == it &&
          cell.synth == synth)
        return cell;
    return cells.front();
  };
  const Cell& off150 = find_cell(false, 150, false);
  const Cell& on150 = find_cell(false, 150, true);
  const Cell& optout150 = find_cell(true, 150, true);
  const double deflation =
      on150.per_query(on150.sha1_blocks) > 0.0
          ? off150.per_query(off150.sha1_blocks) /
                on150.per_query(on150.sha1_blocks)
          : 0.0;
  const double absorbed =
      off150.upstream
          ? 1.0 - static_cast<double>(on150.upstream) /
                      static_cast<double>(off150.upstream)
          : 0.0;
  const double breakage =
      optout150.per_query(optout150.optout_refusals);
  std::printf("# cover@150: %.2fx SHA-1 deflation, %.0f%% upstream queries "
              "absorbed; opt-out control refusal rate %.2f/query\n",
              deflation, 100.0 * absorbed, breakage);

  const char* out_path = std::getenv("ZH_OUT");
  if (!out_path || !*out_path) out_path = "BENCH_aggressive_cache.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (!out) {
    std::fprintf(stderr, "FAILED writing %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"aggressive_cache\",\n");
  std::fprintf(out,
               "  \"limit\": %zu,\n  \"latency_ms\": %g,\n"
               "  \"neg_cache_cap\": %zu,\n  \"failure_cache_ttl_ms\": %lld,\n",
               limit, flags.latency_ms, flags.neg_cache_cap,
               static_cast<long long>(flags.failure_cache_ttl_ms));
  std::fprintf(out,
               "  \"sha1_deflation_cover150\": %.3f,\n"
               "  \"upstream_absorbed_cover150\": %.3f,\n"
               "  \"optout_refusal_rate\": %.3f,\n",
               deflation, absorbed, breakage);
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    std::fprintf(
        out,
        "    {\"zone\": \"%s\", \"iterations\": %u, \"synth\": %s, "
        "\"queries\": %llu, \"upstream_queries\": %llu, "
        "\"sha1_blocks\": %llu, \"sha1_per_query\": %.3f, "
        "\"synth_hits\": %llu, \"optout_refusals\": %llu, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        cell.opt_out ? "opt-out" : "cover", cell.iterations,
        cell.synth ? "true" : "false",
        static_cast<unsigned long long>(cell.queries),
        static_cast<unsigned long long>(cell.upstream),
        static_cast<unsigned long long>(cell.sha1_blocks),
        cell.per_query(cell.sha1_blocks),
        static_cast<unsigned long long>(cell.synth_hits),
        static_cast<unsigned long long>(cell.optout_refusals), cell.p50_ms,
        cell.p99_ms, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# written %s\n", out_path);

  const bool accepted = deflation > 1.1 && absorbed >= 0.5 &&
                        optout150.optout_refusals > 0;
  if (!accepted)
    std::printf("# ACCEPTANCE FAILED: need deflation > 1.1x (got %.2fx), "
                ">= 50%% upstream absorbed (got %.0f%%), opt-out refusals "
                "> 0 (got %llu)\n",
                deflation, 100.0 * absorbed,
                static_cast<unsigned long long>(optout150.optout_refusals));
  return accepted ? 0 : 3;
}
