// §5.2 scalar results: validator counts, Item 6/8 adoption, threshold
// distribution, Item 7 violations, Item 12 gaps and EDE support.
//
// `--jobs N` shards each panel's probing sweep over N worker threads; the
// output is bit-identical for every N (see scanner/parallel.hpp).
#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "bench_procs.hpp"

int main(int argc, char** argv) {
  using namespace zh;
  const bench::BenchFlags flags = bench::parse_flags(argc, argv);
  const double rscale = bench::env_double("ZH_RESOLVER_SCALE", 0.01);
  // Probe infrastructure only; each worker thread builds its own world.
  const workload::EcosystemSpec spec(
      {.scale = 0.00002, .seed = bench::env_u64("ZH_SEED", 42)});
  const auto factory =
      scanner::default_world_factory(spec, /*with_domains=*/false);

  scanner::ResolverSweepStats all;
  std::uint64_t validators_by_panel[4] = {};
  std::uint32_t address_base = 1u << 20;
  const workload::Panel panels[] = {
      workload::Panel::kOpenV4, workload::Panel::kOpenV6,
      workload::Panel::kClosedV4, workload::Panel::kClosedV6};
  for (int p = 0; p < 4; ++p) {
    auto panel_spec = workload::figure3_panel(panels[p], rscale);
    // --aggressive-nsec: the ISSUE 9 sweep axis (no-op when off, keeping
    // the golden populations untouched).
    for (auto& entry : panel_spec.entries)
      flags.apply_aggressive(entry.profile);
    scanner::ParallelOptions options{.base_seed = spec.options().seed};
    flags.apply(options);
    const auto result = bench::run_resolver_sweep(
        flags, panel_spec, factory,
        "s52-" + workload::to_string(panels[p]) + "-", address_base, options);
    address_base += 1u << 20;  // keep the panel address plan in worker mode
    if (!result) continue;     // worker mode: artefact written, next panel
    const scanner::ParallelSweepResult& sweep = *result;
    all.merge(sweep.stats);
    validators_by_panel[p] = sweep.stats.validators;
    // One trace file per panel (suffixed) — each sweep has its own shards.
    bench::BenchFlags panel_flags = flags;
    if (flags.trace_enabled())
      panel_flags.trace_path += "." + workload::to_string(panels[p]);
    bench::write_trace(panel_flags, sweep.trace);
  }
  if (flags.worker_mode()) return 0;  // all four panel artefacts written
  bench::print_stage_breakdown(flags, all.stage_resolve_us,
                               all.stage_recurse_us, all.stage_validate_us,
                               all.stage_queue_wait_us);
  bench::print_aggressive_counters(flags, all.neg_synth_hits,
                                   all.failure_cache_hits);

  const double v = static_cast<double>(all.validators);
  const auto limit_count = [&](const std::map<std::uint16_t, std::uint64_t>&
                                   hist,
                               std::uint16_t limit) -> std::uint64_t {
    const auto it = hist.find(limit);
    return it == hist.end() ? 0 : it->second;
  };
  const std::uint64_t insecure150 = limit_count(all.insecure_limits, 150);
  const std::uint64_t insecure100 = limit_count(all.insecure_limits, 100);
  const std::uint64_t insecure50 = limit_count(all.insecure_limits, 50);

  analysis::print_comparison(
      "Section 5.2 — validating resolvers (paper vs measured; resolver "
      "scale " + std::to_string(rscale) + ")",
      {
          {"open IPv4 validators", "105.2 K",
           analysis::format_count(validators_by_panel[0])},
          {"open IPv6 validators", "6.8 K",
           analysis::format_count(validators_by_panel[1])},
          {"closed IPv4 validators", "1,236",
           std::to_string(validators_by_panel[2])},
          {"closed IPv6 validators", "689",
           std::to_string(validators_by_panel[3])},
          {"limit iterations (Items 6 or 8)", "78.3 %",
           analysis::format_percent(
               static_cast<double>(all.item6 + all.item8) / v)},
          {"insecure above a limit (Item 6)", "59.9 %",
           analysis::format_percent(static_cast<double>(all.item6) / v)},
          {"SERVFAIL above a limit (Item 8)", "18.4 %",
           analysis::format_percent(static_cast<double>(all.item8) / v)},
          {"insecure limit at 150 vs 50", "12.5x more at 150",
           std::to_string(insecure150) + " vs " + std::to_string(insecure50) +
               (insecure50
                    ? " (" +
                          std::to_string(static_cast<double>(insecure150) /
                                         static_cast<double>(insecure50))
                              .substr(0, 4) +
                          "x)"
                    : "")},
          {"insecure limit at 100 (Google-like)",
           "36.4 % of open IPv4 validators",
           std::to_string(insecure100) + " across all panels"},
          {"SERVFAIL from it-1 (limit 0)", "418 resolvers",
           std::to_string(limit_count(all.servfail_limits, 0)) +
               " (scaled)"},
          {"SERVFAIL from it-101 (limit 100)", "92 resolvers",
           std::to_string(limit_count(all.servfail_limits, 100)) +
               " (scaled)"},
          {"Item 7 violations", "0.2 %",
           analysis::format_percent(
               static_cast<double>(all.item7_violations) / v, 2)},
          {"Item 12 gap (insecure<servfail)", "4.3 % (mostly flaky)",
           analysis::format_percent(static_cast<double>(all.item12_gaps) / v,
                                    2)},
          {"EDE attached to limited responses", "< 18 % of open resolvers",
           analysis::format_percent(
               static_cast<double>(all.ede_on_limit) /
               static_cast<double>(all.item6 + all.item8))},
      });
  std::printf(
      "\nNote: absolute counts scale with ZH_RESOLVER_SCALE; percentages are "
      "scale-invariant (and --jobs-invariant; ran with --jobs %u).\n",
      flags.jobs);
  return 0;
}
