// §5.1 scalar results: domain-population and TLD-census compliance with
// RFC 9276 — the headline numbers of the paper (87.8 % non-compliant, ...).
//
// `--jobs N` shards the domain campaign over N worker threads; the scalar
// output is bit-identical for every N (see scanner/parallel.hpp).
#include <chrono>

#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "bench_procs.hpp"

int main(int argc, char** argv) {
  using namespace zh;
  const bench::BenchFlags flags = bench::parse_flags(argc, argv);
  auto world = bench::build_world();

  scanner::ParallelOptions options{.base_seed = bench::env_u64("ZH_SEED", 42)};
  flags.apply(options);
  const auto start = std::chrono::steady_clock::now();
  const auto result = bench::run_domain_campaign(
      flags, *world.spec,
      scanner::default_world_factory(*world.spec, /*with_domains=*/true,
                                     flags.scan_profile()),
      options);
  if (!result) return 0;  // worker mode: artefact written (census is
                          // parent-side work — it is not sharded)
  const scanner::ParallelCampaignResult& campaign = *result;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("# campaign: %llu domains in %.1fs (--jobs %u)\n",
              static_cast<unsigned long long>(campaign.stats.scanned), secs,
              campaign.jobs);
  const auto& s = campaign.stats;
  bench::write_trace(flags, campaign.trace);
  bench::print_stage_breakdown(flags, s.stage_resolve_us, s.stage_recurse_us,
                               s.stage_validate_us, s.stage_queue_wait_us);
  bench::print_aggressive_counters(flags, s.neg_synth_hits,
                                   s.failure_cache_hits);

  const double nsec3 = static_cast<double>(s.nsec3);
  analysis::print_comparison(
      "Section 5.1 — registered domains (paper vs measured)",
      {
          {"registered domains", "302 M",
           analysis::format_count(s.scanned) + " (scaled 1:" +
               std::to_string(static_cast<int>(1.0 / world.scale)) + ")"},
          {"DNSSEC-enabled", "26.6 M (8.8 %)",
           analysis::format_count(s.dnssec) + " (" +
               analysis::format_percent(static_cast<double>(s.dnssec) /
                                        static_cast<double>(s.scanned)) +
               ")"},
          {"NSEC3-enabled", "15.5 M (58.9 % of DNSSEC)",
           analysis::format_count(s.nsec3) + " (" +
               analysis::format_percent(static_cast<double>(s.nsec3) /
                                        static_cast<double>(s.dnssec)) +
               ")"},
          {"zero additional iterations (Item 2)", "12.2 %",
           analysis::format_percent(s.zero_iterations / nsec3)},
          {"RFC 9276 non-compliant (iterations)", "87.8 %",
           analysis::format_percent(1.0 - s.zero_iterations / nsec3)},
          {"no salt (Item 3)", "8.6 %",
           analysis::format_percent(s.no_salt / nsec3)},
          {"opt-out set (Item 4)", "6.4 % (994 K)",
           analysis::format_percent(s.opt_out / nsec3) + " (" +
               analysis::format_count(s.opt_out) + ")"},
          {"> 150 iterations", "43",
           std::to_string(s.over_150_iterations)},
          {"at 500 iterations (max)", "12",
           std::to_string(s.at_500_iterations)},
          {"salt > 45 B", "170", std::to_string(s.salt_over_45)},
          {"salt at 160 B", "9", std::to_string(s.salt_at_160)},
      });

  const auto tld = scanner::scan_tlds(*world.internet, *world.spec,
                                      world.scan_resolver->address());
  analysis::print_comparison(
      "Section 5.1 — TLD census (paper vs measured; census not scaled)",
      {
          {"TLDs analyzed", "1,449", std::to_string(tld.scanned)},
          {"DNSSEC-enabled TLDs", "1,354", std::to_string(tld.dnssec)},
          {"NSEC3-enabled TLDs", "1,302", std::to_string(tld.nsec3)},
          {"NSEC3 share of DNSSEC TLDs", "96.2 %",
           analysis::format_percent(static_cast<double>(tld.nsec3) /
                                    static_cast<double>(tld.dnssec))},
          {"TLDs with 0 iterations", "688",
           std::to_string(tld.zero_iterations)},
          {"TLDs with 100 iterations (Identity Digital)", "447",
           std::to_string(tld.at_100_iterations)},
          {"TLDs without salt", "672", std::to_string(tld.no_salt)},
          {"TLDs with 8-byte salt", "558", std::to_string(tld.salt_8)},
          {"TLDs with 10-byte salt (max)", "7", std::to_string(tld.salt_10)},
          {"TLDs with opt-out (Item 5)", "85.4 %",
           analysis::format_percent(static_cast<double>(tld.opt_out) /
                                    static_cast<double>(tld.nsec3))},
          {"TLD non-compliance", "47.2 %",
           analysis::format_percent(
               1.0 - static_cast<double>(tld.zero_iterations) /
                         static_cast<double>(tld.nsec3))},
      });
  return 0;
}
