// Micro-benchmarks (google-benchmark): NSEC3 hashing — the primitive whose
// cost RFC 9276 regulates — across iteration counts and salt lengths, plus
// the signing/validation hot paths.
#include <benchmark/benchmark.h>

#include "crypto/nsec3_hash.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha2.hpp"
#include "dns/dnssec.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

namespace {

using zh::dns::Name;

void BM_Sha1Block(benchmark::State& state) {
  const std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                       0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        zh::crypto::Sha1::hash(std::span<const std::uint8_t>(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Block)->Arg(20)->Arg(64)->Arg(256)->Arg(1024);

void BM_Sha256Block(benchmark::State& state) {
  const std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                       0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        zh::crypto::Sha256::hash(std::span<const std::uint8_t>(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256Block)->Arg(64)->Arg(1024);

/// The headline micro: one NSEC3 hash at N additional iterations.
void BM_Nsec3Hash_Iterations(benchmark::State& state) {
  const auto owner = Name::must_parse("www.example.com").to_canonical_wire();
  const std::uint16_t iterations =
      static_cast<std::uint16_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zh::crypto::nsec3_hash(
        std::span<const std::uint8_t>(owner.data(), owner.size()), {},
        iterations));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Nsec3Hash_Iterations)
    ->Arg(0)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(150)
    ->Arg(500)
    ->Arg(2500);

void BM_Nsec3Hash_SaltLength(benchmark::State& state) {
  const auto owner = Name::must_parse("www.example.com").to_canonical_wire();
  const std::vector<std::uint8_t> salt(
      static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zh::crypto::nsec3_hash(
        std::span<const std::uint8_t>(owner.data(), owner.size()),
        std::span<const std::uint8_t>(salt.data(), salt.size()), 10));
  }
}
BENCHMARK(BM_Nsec3Hash_SaltLength)->Arg(0)->Arg(8)->Arg(40)->Arg(160);

/// Zone signing cost by iteration count (authoritative-side view of Item 2).
void BM_SignZone(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    zh::zone::Zone zone(Name::must_parse("example.com"));
    zone.add(zh::dns::make_soa(zone.apex(), 3600,
                               Name::must_parse("ns1.example.com"), 1));
    zone.add(zh::dns::make_ns(zone.apex(), 3600,
                              Name::must_parse("ns1.example.com")));
    for (int i = 0; i < 20; ++i) {
      zone.add(zh::dns::make_a(
          *zone.apex().prepended("host" + std::to_string(i)), 300, 192, 0, 2,
          static_cast<std::uint8_t>(i)));
    }
    zh::zone::SignerConfig config;
    config.nsec3.iterations = static_cast<std::uint16_t>(state.range(0));
    state.ResumeTiming();
    benchmark::DoNotOptimize(zh::zone::sign_zone(zone, config));
  }
}
BENCHMARK(BM_SignZone)->Arg(0)->Arg(1)->Arg(100)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
