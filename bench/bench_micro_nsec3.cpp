// Micro-benchmarks (google-benchmark): NSEC3 hashing — the primitive whose
// cost RFC 9276 regulates — across iteration counts and salt lengths, plus
// the signing/validation hot paths.
#include <benchmark/benchmark.h>

#include "crypto/nsec3_hash.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha1_mb.hpp"
#include "crypto/sha2.hpp"
#include "dns/dnssec.hpp"
#include "zone/chain_memo.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

namespace {

using zh::dns::Name;

/// Pins the NSEC3 chain memo capacity for one benchmark's scope.
class ScopedChainMemo {
 public:
  explicit ScopedChainMemo(std::size_t capacity)
      : previous_(zh::zone::Nsec3ChainMemo::instance().capacity()) {
    zh::zone::Nsec3ChainMemo::instance().clear();
    zh::zone::Nsec3ChainMemo::instance().set_capacity(capacity);
  }
  ~ScopedChainMemo() {
    zh::zone::Nsec3ChainMemo::instance().clear();
    zh::zone::Nsec3ChainMemo::instance().set_capacity(previous_);
  }

 private:
  std::size_t previous_;
};

void BM_Sha1Block(benchmark::State& state) {
  const std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                       0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        zh::crypto::Sha1::hash(std::span<const std::uint8_t>(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Block)->Arg(20)->Arg(64)->Arg(256)->Arg(1024);

void BM_Sha256Block(benchmark::State& state) {
  const std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                       0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        zh::crypto::Sha256::hash(std::span<const std::uint8_t>(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256Block)->Arg(64)->Arg(1024);

/// The headline micro: one NSEC3 hash at N additional iterations.
void BM_Nsec3Hash_Iterations(benchmark::State& state) {
  const auto owner = Name::must_parse("www.example.com").to_canonical_wire();
  const std::uint16_t iterations =
      static_cast<std::uint16_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zh::crypto::nsec3_hash(
        std::span<const std::uint8_t>(owner.data(), owner.size()), {},
        iterations));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Nsec3Hash_Iterations)
    ->Arg(0)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(150)
    ->Arg(500)
    ->Arg(2500);

void BM_Nsec3Hash_SaltLength(benchmark::State& state) {
  const auto owner = Name::must_parse("www.example.com").to_canonical_wire();
  const std::vector<std::uint8_t> salt(
      static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zh::crypto::nsec3_hash(
        std::span<const std::uint8_t>(owner.data(), owner.size()),
        std::span<const std::uint8_t>(salt.data(), salt.size()), 10));
  }
}
BENCHMARK(BM_Nsec3Hash_SaltLength)->Arg(0)->Arg(8)->Arg(40)->Arg(160);

/// The tentpole micro: batch NSEC3 hashing through each SHA-1 kernel.
/// range(0) selects the implementation (0 scalar / 1 ssse3 / 2 avx2),
/// range(1) the batch size, range(2) the iteration count. Unsupported
/// kernels are skipped, so the full grid is safe on any host. The SIMD ÷
/// scalar items-per-second ratio at equal (batch, iterations) is the
/// speedup figure quoted in docs/PERFORMANCE.md.
void BM_Nsec3BatchHash(benchmark::State& state) {
  const auto impl = static_cast<zh::crypto::Sha1Impl>(state.range(0));
  if (!zh::crypto::sha1_impl_supported(impl)) {
    state.SkipWithError("kernel not supported on this host/build");
    return;
  }
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  const auto iterations = static_cast<std::uint16_t>(state.range(2));

  std::vector<std::vector<std::uint8_t>> owners;
  owners.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    owners.push_back(Name::must_parse("host" + std::to_string(i) +
                                      ".example.com")
                         .to_canonical_wire());
  std::vector<std::span<const std::uint8_t>> spans;
  spans.reserve(batch);
  for (const auto& owner : owners) spans.emplace_back(owner.data(),
                                                      owner.size());
  std::vector<zh::crypto::Nsec3Digest> digests(batch);

  const zh::crypto::Sha1Impl previous = zh::crypto::sha1_impl();
  zh::crypto::set_sha1_impl(impl);
  for (auto _ : state) {
    zh::crypto::nsec3_hash_batch(
        std::span<const std::span<const std::uint8_t>>(spans.data(),
                                                       spans.size()),
        {}, iterations, digests.data());
    benchmark::DoNotOptimize(digests.data());
  }
  zh::crypto::set_sha1_impl(previous);

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.SetLabel(zh::crypto::sha1_impl_name(impl));
}
BENCHMARK(BM_Nsec3BatchHash)
    ->ArgsProduct({{0, 1, 2}, {64, 1024}, {0, 10, 150}});

/// A 20-host zone, the shared workload of the signing benches below.
zh::zone::Zone make_bench_zone(std::uint16_t iterations,
                               zh::zone::SignerConfig* config) {
  zh::zone::Zone zone(Name::must_parse("example.com"));
  zone.add(zh::dns::make_soa(zone.apex(), 3600,
                             Name::must_parse("ns1.example.com"), 1));
  zone.add(zh::dns::make_ns(zone.apex(), 3600,
                            Name::must_parse("ns1.example.com")));
  for (int i = 0; i < 20; ++i) {
    zone.add(zh::dns::make_a(
        *zone.apex().prepended("host" + std::to_string(i)), 300, 192, 0, 2,
        static_cast<std::uint8_t>(i)));
  }
  config->nsec3.iterations = iterations;
  return zone;
}

/// Zone signing cost by iteration count (authoritative-side view of Item 2).
/// The chain memo is disabled here so every iteration pays the full hash +
/// sign cost — the from-scratch baseline for BM_SignZone_MemoHit.
void BM_SignZone(benchmark::State& state) {
  ScopedChainMemo memo_off(0);
  for (auto _ : state) {
    state.PauseTiming();
    zh::zone::SignerConfig config;
    zh::zone::Zone zone = make_bench_zone(
        static_cast<std::uint16_t>(state.range(0)), &config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(zh::zone::sign_zone(zone, config));
  }
}
BENCHMARK(BM_SignZone)->Arg(0)->Arg(1)->Arg(100)->Arg(500);

/// Re-signing an already-seen zone through the chain memo — the lazy-LRU
/// re-materialisation path. The gap to BM_SignZone at the same iteration
/// count is what memoisation saves an operator under eviction pressure.
void BM_SignZone_MemoHit(benchmark::State& state) {
  ScopedChainMemo memo_on(16);
  {
    // Warm the memo with the chain every timed iteration will replay.
    zh::zone::SignerConfig config;
    zh::zone::Zone zone = make_bench_zone(
        static_cast<std::uint16_t>(state.range(0)), &config);
    zh::zone::sign_zone(zone, config);
  }
  for (auto _ : state) {
    state.PauseTiming();
    zh::zone::SignerConfig config;
    zh::zone::Zone zone = make_bench_zone(
        static_cast<std::uint16_t>(state.range(0)), &config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(zh::zone::sign_zone(zone, config));
  }
}
BENCHMARK(BM_SignZone_MemoHit)->Arg(0)->Arg(1)->Arg(100)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
