// Figure 3 — RCODEs of validating resolvers vs the number of additional
// iterations, for the four panels (open/closed × IPv4/IPv6) of §5.2.
//
// Instantiates calibrated resolver populations, runs the §4.2 probing
// harness (valid/expired validator filter, then the it-N sweep with unique
// query names per resolver), and prints the three series the paper plots:
// NXDOMAIN, NXDOMAIN with AD, and SERVFAIL shares.
#include <chrono>

#include "analysis/export.hpp"
#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "bench_procs.hpp"

namespace {

void print_panel(const char* title,
                 const zh::scanner::ResolverSweepStats& stats) {
  std::printf("\n%s — %llu probed, %llu validators\n", title,
              static_cast<unsigned long long>(stats.probed),
              static_cast<unsigned long long>(stats.validators));
  std::printf("%8s %12s %14s %12s\n", "add.it.", "NXDOMAIN",
              "AD+NXDOMAIN", "SERVFAIL");
  for (const auto& [iterations, shares] : stats.by_iteration) {
    // Print the probe grid sparsely: every value ≤ 25, then the 25-steps.
    if (iterations > 25 && iterations % 25 != 0 && iterations != 51 &&
        iterations != 101 && iterations != 151)
      continue;
    const double total = static_cast<double>(shares.total);
    std::printf("%8u %11.1f%% %13.1f%% %11.1f%%\n", iterations,
                100.0 * static_cast<double>(shares.nxdomain) / total,
                100.0 * static_cast<double>(shares.nxdomain_ad) / total,
                100.0 * static_cast<double>(shares.servfail) / total);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zh;
  const bench::BenchFlags flags = bench::parse_flags(argc, argv);
  const double rscale = bench::env_double("ZH_RESOLVER_SCALE", 0.01);
  // Figure 3 needs the probe infrastructure only — domains are irrelevant;
  // every worker builds its own domain-less world.
  const workload::EcosystemSpec spec(
      {.scale = 0.00002, .seed = bench::env_u64("ZH_SEED", 42)});
  const auto factory =
      scanner::default_world_factory(spec, /*with_domains=*/false);

  const workload::Panel panels[] = {
      workload::Panel::kOpenV4, workload::Panel::kOpenV6,
      workload::Panel::kClosedV4, workload::Panel::kClosedV6};
  std::uint32_t address_base = 1u << 20;

  for (const auto panel : panels) {
    auto panel_spec = workload::figure3_panel(panel, rscale);
    // --aggressive-nsec: every panel stratum gains the RFC 8198/9520
    // caches — the new sweep axis (ISSUE 9). Off (the default) leaves the
    // panel byte-identical to the golden populations.
    for (auto& entry : panel_spec.entries)
      flags.apply_aggressive(entry.profile);
    scanner::ParallelOptions options{.base_seed = spec.options().seed};
    flags.apply(options);
    const auto start = std::chrono::steady_clock::now();
    const auto result = bench::run_resolver_sweep(
        flags, panel_spec, factory, "f3-" + workload::to_string(panel) + "-",
        address_base, options);
    address_base += 1u << 20;  // keep the panel address plan in worker mode
    if (!result) continue;     // worker mode: artefact written, next panel
    const scanner::ParallelSweepResult& sweep = *result;
    const scanner::ResolverSweepStats& stats = sweep.stats;
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    print_panel(("Figure 3 (" + workload::to_string(panel) +
                 ", resolver scale " + std::to_string(rscale) + ")")
                    .c_str(),
                stats);
    std::printf("# %zu resolvers probed with %llu queries in %.1fs "
                "(--jobs %u)\n",
                sweep.population,
                static_cast<unsigned long long>(sweep.queries_issued), secs,
                sweep.jobs);
    // One trace file per panel (suffixed), since each sweep has its own
    // shard set; the stage breakdown prints per panel too.
    bench::BenchFlags panel_flags = flags;
    if (flags.trace_enabled())
      panel_flags.trace_path += "." + workload::to_string(panel);
    bench::write_trace(panel_flags, sweep.trace);
    bench::print_stage_breakdown(flags, stats.stage_resolve_us,
                                 stats.stage_recurse_us,
                                 stats.stage_validate_us,
                                 stats.stage_queue_wait_us);
    bench::print_aggressive_counters(flags, stats.neg_synth_hits,
                                     stats.failure_cache_hits);

    if (const char* dir = std::getenv("ZH_OUTPUT_DIR")) {
      analysis::Table table(
          {"additional_iterations", "nxdomain", "nxdomain_ad", "servfail"});
      for (const auto& [iterations, shares] : stats.by_iteration) {
        const double total = static_cast<double>(shares.total);
        table.add_row({std::to_string(iterations),
                       std::to_string(shares.nxdomain / total),
                       std::to_string(shares.nxdomain_ad / total),
                       std::to_string(shares.servfail / total)});
      }
      analysis::write_file(dir,
                           "fig3_" + workload::to_string(panel) + ".csv",
                           table.to_csv());
    }
  }

  if (flags.worker_mode()) return 0;  // all four panel artefacts written
  std::printf(
      "\nPaper's qualitative shape to compare against:\n"
      "  - AD+NXDOMAIN steps down at 50 / 100 / 150 additional iterations\n"
      "    (100 is the Google boundary: ~36 %% of open IPv4 validators);\n"
      "  - SERVFAIL jumps at 151 to ~18 %% and stays flat to 500;\n"
      "  - NXDOMAIN ≈ 100 %% - SERVFAIL throughout.\n");
  return 0;
}
