// Figure 1 — CDF of the salt length and the number of additional iterations
// for all NSEC3-enabled domains (§5.1).
//
// Runs the full §4.1 scanning pipeline over the synthetic population through
// the simulated Cloudflare resolver, then prints the two CDFs and the
// paper-vs-measured anchor points. `--jobs N` shards the campaign over N
// worker threads; every number printed is bit-identical for any N.
#include <chrono>

#include "analysis/export.hpp"
#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "bench_procs.hpp"

int main(int argc, char** argv) {
  using namespace zh;
  const bench::BenchFlags flags = bench::parse_flags(argc, argv);
  const double scale = bench::env_double("ZH_SCALE", 0.001);
  workload::EcosystemSpec spec(
      {.scale = scale, .seed = bench::env_u64("ZH_SEED", 42)});

  scanner::ParallelOptions options{.base_seed = spec.options().seed};
  flags.apply(options);
  const auto start = std::chrono::steady_clock::now();
  const auto result = bench::run_domain_campaign(
      flags, spec,
      scanner::default_world_factory(spec, /*with_domains=*/true,
                                     flags.scan_profile()),
      options);
  if (!result) return 0;  // worker mode: the shard artefact is the output
  const scanner::ParallelCampaignResult& campaign = *result;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto& stats = campaign.stats;
  std::printf(
      "# scanned %llu domains (%llu DNS queries) in %.1fs (--jobs %u, "
      "scale %g)\n",
      static_cast<unsigned long long>(stats.scanned),
      static_cast<unsigned long long>(campaign.queries_issued), secs,
      campaign.jobs, scale);
  bench::write_trace(flags, campaign.trace);
  bench::print_stage_breakdown(flags, stats.stage_resolve_us,
                               stats.stage_recurse_us, stats.stage_validate_us,
                               stats.stage_queue_wait_us);
  bench::print_aggressive_counters(flags, stats.neg_synth_hits,
                                   stats.failure_cache_hits);

  analysis::print_ascii_cdf("Figure 1a: CDF of additional iterations "
                            "(NSEC3-enabled domains), x in [0,50]",
                            stats.iterations, 50);
  analysis::print_ascii_cdf(
      "Figure 1b: CDF of salt length in bytes (NSEC3-enabled domains), "
      "x in [0,50]",
      stats.salt_len, 50);

  const auto& it = stats.iterations;
  const auto& salt = stats.salt_len;
  analysis::print_comparison(
      "Figure 1 anchor points (paper vs measured)",
      {
          {"P(iterations = 0)", "12.2 %",
           analysis::format_percent(it.fraction_at_most(0))},
          {"P(iterations <= 25)", "99.9 %",
           analysis::format_percent(it.fraction_at_most(25), 2)},
          {"max iterations", "500", std::to_string(it.max())},
          {"domains > 150 iterations", "43",
           std::to_string(it.count_above(150))},
          {"domains at 500 iterations", "12",
           std::to_string(it.count_of(500))},
          {"P(no salt)", "8.6 %",
           analysis::format_percent(salt.fraction_at_most(0))},
          {"P(salt <= 10 B)", "97.2 %",
           analysis::format_percent(salt.fraction_at_most(10))},
          {"domains with salt > 45 B", "170",
           std::to_string(salt.count_above(45))},
          {"domains with 160 B salt", "9",
           std::to_string(salt.count_of(160))},
      });
  std::printf(
      "\nNote: the >150-iteration and >45-B-salt tails are planted with the "
      "paper's absolute counts\n(DESIGN.md §1), so their CDF weight grows as "
      "the population scale shrinks.\n");

  // Optional plottable artefacts.
  if (const char* dir = std::getenv("ZH_OUTPUT_DIR")) {
    const bool ok =
        analysis::write_file(dir, "fig1_iterations_cdf.csv",
                             analysis::ecdf_to_csv(stats.iterations,
                                                   "additional_iterations")) &&
        analysis::write_file(dir, "fig1_salt_cdf.csv",
                             analysis::ecdf_to_csv(stats.salt_len,
                                                   "salt_bytes")) &&
        analysis::write_file(dir, "table2_operators.csv",
                             analysis::freq_to_csv(stats.operators,
                                                   "operator"));
    std::printf("# CSV artefacts %s to %s\n", ok ? "written" : "FAILED", dir);
  }
  return 0;
}
