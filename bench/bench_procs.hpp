// Process-mode dispatch for the reproduction benches.
//
// One entry point per campaign kind, wrapping the in-process parallel
// engine with the three multi-process roles (bench_common.hpp flags):
//
//   * parent (--procs K): forks K workers of this binary on the first
//     campaign of the run (workers re-run the whole main, so one spawn
//     covers every campaign a bench issues), then merges each campaign's
//     shard artefacts. Byte-identical to the serial and --jobs runs.
//   * worker (--shard s --of K --emit-shard BASE): runs its sub-shard
//     in-process, writes the artefact to BASE.c<call>.s<s> and returns
//     nullopt — the bench skips its reporting for that campaign.
//   * merge (--merge-shards FILE...): no scanning at all; decodes and
//     merges previously written artefacts (from any machine).
//
// Parent and workers execute the same main and therefore the same
// sequence of dispatch calls; a shared per-run call counter keeps their
// artefact names and tags ("domain#<n>" / "sweep#<n>") aligned without
// any coordination beyond argv.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "analysis/serialize.hpp"
#include "bench_common.hpp"
#include "scanner/process.hpp"
#include "scanner/serialize.hpp"

namespace zh::bench {
namespace detail {

/// Campaigns issued so far by this process (parent or worker — both run
/// the same main, so the counters advance in lockstep).
inline unsigned next_call_index() {
  static unsigned calls = 0;
  return calls++;
}

[[noreturn]] inline void die(const std::string& message) {
  std::fprintf(stderr, "bench_procs: %s\n", message.c_str());
  std::exit(1);
}

/// The parent's one-per-run worker fan-out + artefact directory. The
/// merged files are unlinked eagerly; the directory goes at exit.
struct ProcsSession {
  std::string dir;
  bool spawned = false;
  ~ProcsSession() {
    if (!dir.empty()) std::remove(dir.c_str());
  }
};

inline ProcsSession& procs_session() {
  static ProcsSession session;
  return session;
}

/// Shard-artefact paths for one campaign: BASE.c<call>.s<shard>.
inline std::string artefact_path(const std::string& base, unsigned call,
                                 unsigned shard) {
  return base + ".c" + std::to_string(call) + ".s" + std::to_string(shard);
}

/// Ensures the K workers have run (first campaign only) and returns this
/// campaign's artefact paths.
inline std::vector<std::string> run_workers_once(const BenchFlags& flags,
                                                 unsigned call) {
  ProcsSession& session = procs_session();
  if (!session.spawned) {
    if (flags.trace_enabled()) {
      std::fprintf(stderr,
                   "# --trace is per-process; ignored under --procs %u "
                   "(run with --jobs for a merged trace)\n",
                   flags.procs);
    }
    std::string error;
    session.dir = scanner::make_shard_dir(error);
    if (session.dir.empty()) detail::die(error);
    if (!scanner::spawn_shard_workers(flags.exe, flags.worker_args,
                                      flags.procs, session.dir + "/shard",
                                      error))
      detail::die(error);
    session.spawned = true;
  }
  std::vector<std::string> paths;
  paths.reserve(flags.procs);
  for (unsigned shard = 0; shard < flags.procs; ++shard)
    paths.push_back(artefact_path(session.dir + "/shard", call, shard));
  return paths;
}

template <typename Result, typename Artefact, typename RunFn, typename FillFn>
std::optional<Result> dispatch(
    const BenchFlags& flags, const char* kind, RunFn run,
    bool (*merge)(const std::vector<std::string>&, const std::string&,
                  Result&, std::string&),
    FillFn fill) {
  const unsigned call = next_call_index();
  const std::string tag = std::string(kind) + "#" + std::to_string(call);
  std::string error;
  if (flags.merge_mode()) {
    Result out;
    if (!merge(flags.merge_shards, tag, out, error)) die(error);
    return out;
  }
  if (flags.worker_mode()) {
    const Result result = run();
    Artefact artefact;
    artefact.tag = tag;
    artefact.shard = flags.shard;
    artefact.of = flags.of;
    artefact.jobs = result.jobs;
    fill(result, artefact);
    const std::string path = artefact_path(flags.emit_shard, call,
                                           flags.shard);
    if (!analysis::write_bytes_file(path, scanner::encode_artefact(artefact)))
      die(path + ": cannot write shard artefact");
    return std::nullopt;
  }
  if (flags.procs > 1) {
    const std::vector<std::string> paths = run_workers_once(flags, call);
    Result out;
    if (!merge(paths, tag, out, error)) die(error);
    for (const auto& path : paths) std::remove(path.c_str());
    return out;
  }
  return run();
}

}  // namespace detail

/// Runs (or merges) one §4.1 domain campaign under the parsed flags.
/// nullopt ⇔ worker mode (the artefact was written; skip reporting).
inline std::optional<scanner::ParallelCampaignResult> run_domain_campaign(
    const BenchFlags& flags, const workload::EcosystemSpec& spec,
    const scanner::ShardWorldFactory& factory,
    const scanner::ParallelOptions& options) {
  return detail::dispatch<scanner::ParallelCampaignResult,
                          scanner::DomainShardArtefact>(
      flags, "domain",
      [&] { return scanner::run_domain_campaign_parallel(spec, factory,
                                                         options); },
      &scanner::merge_domain_shards,
      [](const scanner::ParallelCampaignResult& result,
         scanner::DomainShardArtefact& artefact) {
        artefact.stats = result.stats;
        artefact.records = result.records;
        artefact.queries_issued = result.queries_issued;
        artefact.cost = result.cost;
      });
}

/// Runs (or merges) one §4.2 resolver sweep under the parsed flags.
/// nullopt ⇔ worker mode (the artefact was written; skip reporting).
inline std::optional<scanner::ParallelSweepResult> run_resolver_sweep(
    const BenchFlags& flags, const workload::PanelSpec& panel,
    const scanner::ShardWorldFactory& factory,
    const std::string& token_prefix, std::uint32_t address_base,
    const scanner::ParallelOptions& options) {
  return detail::dispatch<scanner::ParallelSweepResult,
                          scanner::SweepShardArtefact>(
      flags, "sweep",
      [&] {
        return scanner::run_resolver_sweep_parallel(
            panel, factory, token_prefix, address_base, options);
      },
      &scanner::merge_sweep_shards,
      [](const scanner::ParallelSweepResult& result,
         scanner::SweepShardArtefact& artefact) {
        artefact.stats = result.stats;
        artefact.queries_issued = result.queries_issued;
        artefact.population = result.population;
        artefact.cost = result.cost;
      });
}

}  // namespace zh::bench
