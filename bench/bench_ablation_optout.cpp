// Ablation: RFC 9276 Items 4/5 — why large delegation-centric zones keep
// NSEC3 for its opt-out flag even though hashing no longer hides anything.
//
// Builds TLD-shaped zones (many delegations, few of them signed) with and
// without opt-out and measures chain length, record count and signing cost.
// Opt-out removes insecure delegations from the chain, which is why 85.4 %
// of NSEC3 TLDs set it (Item 5) while small zones should not (Item 4) —
// the flag trades a smaller zone for weaker denial (covered, not matched,
// names below the opted-out spans).
#include <chrono>
#include <cstdio>

#include "crypto/cost_meter.hpp"
#include "dns/dnssec.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

using namespace zh;

namespace {

/// A TLD-shaped zone: `delegations` children, `signed_fraction` with DS.
zone::Zone tld_zone(std::size_t delegations, double signed_fraction) {
  zone::Zone z(dns::Name::must_parse("tld"));
  z.add(dns::make_soa(z.apex(), 86400, dns::Name::must_parse("ns1.tld"), 1));
  z.add(dns::make_ns(z.apex(), 86400, dns::Name::must_parse("ns1.tld")));
  z.add(dns::make_a(dns::Name::must_parse("ns1.tld"), 86400, 10, 0, 0, 53));
  const std::size_t signed_count =
      static_cast<std::size_t>(delegations * signed_fraction);
  for (std::size_t i = 0; i < delegations; ++i) {
    const dns::Name child =
        *z.apex().prepended("domain" + std::to_string(i));
    z.add(dns::make_ns(child, 86400, dns::Name::must_parse("ns.hoster.tld")));
    if (i < signed_count) {
      dns::DsRdata ds;
      ds.key_tag = static_cast<std::uint16_t>(i);
      ds.algorithm = 253;
      ds.digest.assign(32, static_cast<std::uint8_t>(i));
      z.add(dns::ResourceRecord::make(child, dns::RrType::kDs, 86400, ds));
    }
  }
  return z;
}

}  // namespace

int main() {
  std::printf("Opt-out ablation: TLD-shaped zones, 9 %% of delegations "
              "signed (the com-like regime)\n\n");
  std::printf("%12s %9s | %12s %12s %10s | %12s %12s %10s\n", "delegations",
              "opt-out", "chain len", "SHA-1 blks", "sign ms", "chain len",
              "SHA-1 blks", "sign ms");
  std::printf("%46s | %36s\n", "(opt-out on)", "(opt-out off)");
  std::printf("%s\n", std::string(104, '-').c_str());

  for (const std::size_t delegations : {1000u, 10000u, 50000u}) {
    struct Run {
      std::size_t chain = 0;
      std::uint64_t blocks = 0;
      double ms = 0;
    };
    Run runs[2];
    for (int opt_out = 1; opt_out >= 0; --opt_out) {
      zone::Zone z = tld_zone(delegations, 0.09);
      zone::SignerConfig config;
      config.nsec3.opt_out = opt_out == 1;
      crypto::CostMeter::reset();
      const auto start = std::chrono::steady_clock::now();
      zone::sign_zone(z, config);
      runs[opt_out].ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
      runs[opt_out].blocks = crypto::CostMeter::sha1_blocks();
      runs[opt_out].chain = z.nsec3_entries().size();
    }
    std::printf("%12zu %9s | %12zu %12llu %9.0fms | %12zu %12llu %9.0fms\n",
                delegations, "", runs[1].chain,
                static_cast<unsigned long long>(runs[1].blocks), runs[1].ms,
                runs[0].chain,
                static_cast<unsigned long long>(runs[0].blocks), runs[0].ms);
  }

  std::printf(
      "\nAt com scale (~160 M delegations, a few %% signed), opt-out shrinks "
      "the chain by an\norder of magnitude — the one NSEC3 feature NSEC "
      "cannot replace, and the reason the\npaper finds 85.4 %% of NSEC3 "
      "TLDs setting the flag (Item 5) while only 6.4 %% of\nregistered "
      "domains do (Item 4).\n");
  return 0;
}
