// Extension bench — the paper's future-work item (i): NSEC3 parameter
// prevalence over time. Rebuilds the ecosystem at four epochs around the
// two documented registry transitions (Identity Digital 1 → 100 → 0,
// TransIP 100 → 0) and re-runs the TLD census + a domain scan at each,
// showing how a single registry-services provider moves the global
// compliance picture — the paper's §6 "few organizations could improve
// the adoption of RFC 9276" point, quantified.
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_common.hpp"

namespace {

struct Epoch {
  const char* label;
  zh::workload::Snapshot snapshot;
};

constexpr Epoch kEpochs[] = {
    {"Sept 2020 (before ID 1->100)", zh::workload::Snapshot::kSept2020},
    {"2021 (100-iteration era)", zh::workload::Snapshot::kEarly2021},
    {"March 2024 (paper window)", zh::workload::Snapshot::kMarch2024},
    {"Late 2024 (post-remediation)", zh::workload::Snapshot::kLate2024},
};

}  // namespace

int main() {
  using namespace zh;
  const double scale = bench::env_double("ZH_SCALE", 0.0002);

  std::printf("NSEC3 parameter settings over time (scale %g)\n\n", scale);
  std::printf("%-30s | %13s %13s | %16s %16s\n", "epoch", "TLDs at 100",
              "TLDs at 0", "TLD compliance", "domain zero-iter");
  std::printf("%s\n", std::string(100, '-').c_str());

  for (const Epoch& epoch : kEpochs) {
    workload::EcosystemSpec spec(
        {.scale = scale, .seed = 42, .snapshot = epoch.snapshot});
    testbed::Internet internet;
    workload::install_ecosystem(internet, spec);
    internet.build();
    auto resolver = internet.make_resolver(
        resolver::ResolverProfile::cloudflare(),
        simnet::IpAddress::v4(1, 1, 1, 1));

    const auto tld = scanner::scan_tlds(internet, spec, resolver->address());
    scanner::DomainCampaign campaign(internet, spec, resolver->address());
    campaign.run();
    const auto& d = campaign.stats();

    std::printf("%-30s | %13llu %13llu | %15s %16s\n", epoch.label,
                static_cast<unsigned long long>(tld.at_100_iterations),
                static_cast<unsigned long long>(tld.zero_iterations),
                analysis::format_percent(
                    static_cast<double>(tld.zero_iterations) /
                    static_cast<double>(tld.nsec3))
                    .c_str(),
                analysis::format_percent(
                    static_cast<double>(d.zero_iterations) /
                    static_cast<double>(d.nsec3))
                    .c_str());
  }

  std::printf(
      "\nOne registry-services provider flips 447 TLDs (≥ 12.6 M delegated "
      "domains) between\nepochs; one hosting operator (TransIP) moves ~4 %% "
      "of all NSEC3-enabled domains.\nThe paper's conclusion — a handful of "
      "organizations control RFC 9276 adoption —\nfalls straight out of the "
      "timeline.\n");
  return 0;
}
