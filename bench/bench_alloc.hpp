// Counting operator new/delete hook for allocation-gated benches.
//
// A bench that wants allocations-per-op numbers defines
// ZH_BENCH_COUNT_ALLOCS *before* including this header, in exactly one
// translation unit of the binary (the benches are single-TU, so "at the top
// of the .cpp" is that). The replaceable global allocation functions are
// then routed through malloc with relaxed atomic counters; alloc_stats()
// snapshots them. Without the macro this header declares the API only and
// the binary keeps the toolchain's allocator untouched — never define the
// macro in more than one TU of a binary (duplicate operator new definitions
// are an ODR violation).
//
// The counters are process-wide on purpose: a steady-state "0 allocs/query"
// claim must see every allocation, including ones smuggled in by libraries.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace zh::bench {

/// Snapshot of the process-wide allocation counters. Deltas between two
/// snapshots bound the allocation work in between.
struct AllocStats {
  std::uint64_t allocations = 0;  // operator new calls (all variants)
  std::uint64_t frees = 0;        // operator delete calls (all variants)
  std::uint64_t bytes = 0;        // total bytes requested from new
};

#ifdef ZH_BENCH_COUNT_ALLOCS

namespace alloc_detail {
inline std::atomic<std::uint64_t> allocations{0};
inline std::atomic<std::uint64_t> frees{0};
inline std::atomic<std::uint64_t> bytes{0};
}  // namespace alloc_detail

inline AllocStats alloc_stats() noexcept {
  AllocStats stats;
  stats.allocations =
      alloc_detail::allocations.load(std::memory_order_relaxed);
  stats.frees = alloc_detail::frees.load(std::memory_order_relaxed);
  stats.bytes = alloc_detail::bytes.load(std::memory_order_relaxed);
  return stats;
}

#else

/// Declared so shared helpers can link against a counting TU; benches that
/// never define the macro must not call this.
AllocStats alloc_stats() noexcept;

#endif  // ZH_BENCH_COUNT_ALLOCS

}  // namespace zh::bench

#ifdef ZH_BENCH_COUNT_ALLOCS

#include <cstdlib>
#include <new>

namespace zh::bench::alloc_detail {

inline void* counted_alloc(std::size_t size, std::size_t align) {
  allocations.fetch_add(1, std::memory_order_relaxed);
  bytes.fetch_add(size, std::memory_order_relaxed);
  if (align <= alignof(std::max_align_t)) return std::malloc(size ? size : 1);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}

inline void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace zh::bench::alloc_detail

void* operator new(std::size_t size) {
  void* p = zh::bench::alloc_detail::counted_alloc(size, 0);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = zh::bench::alloc_detail::counted_alloc(size, 0);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = zh::bench::alloc_detail::counted_alloc(
      size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = zh::bench::alloc_detail::counted_alloc(
      size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return zh::bench::alloc_detail::counted_alloc(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return zh::bench::alloc_detail::counted_alloc(size, 0);
}

void operator delete(void* p) noexcept { zh::bench::alloc_detail::counted_free(p); }
void operator delete[](void* p) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  zh::bench::alloc_detail::counted_free(p);
}

#endif  // ZH_BENCH_COUNT_ALLOCS
