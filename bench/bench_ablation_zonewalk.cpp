// Ablation: RFC 9276 Item 2's core trade-off, quantified.
//
// For each iteration count, measures (a) the *attacker's* offline cost to
// crack a fixed dictionary against a harvested NSEC3 chain and (b) the
// *validator's* per-query cost to verify one denial proof. Both grow with
// the same slope — extra iterations tax every resolver on the Internet as
// much as they tax one attacker, while the dictionary still falls. That
// asymmetry is the whole argument of "Zeros Are Heroes".
#include <cstdio>

#include "bench_common.hpp"
#include "scanner/zone_walker.hpp"

int main() {
  using namespace zh;

  std::printf("%10s | %22s %18s | %22s %12s\n", "add.it.",
              "attacker SHA-1 blocks", "names cracked", "validator blocks/q",
              "slowdown");
  std::printf("%s\n", std::string(96, '-').c_str());

  std::uint64_t validator_baseline = 0;
  int zone_index = 0;
  for (const std::uint16_t iterations : {0, 1, 5, 10, 25, 50, 100, 150}) {
    // Fresh world per setting (zones differ only in the iteration count).
    testbed::Internet internet;
    internet.add_tld("com", testbed::TldConfig{});
    testbed::DomainConfig config;
    config.apex = dns::Name::must_parse(
        "corp" + std::to_string(zone_index++) + ".com");
    config.nsec3 = {.iterations = iterations, .salt = {}, .opt_out = false};
    internet.add_domain(config);
    internet.build();

    auto resolver = internet.make_resolver(
        resolver::ResolverProfile::non_validating(),
        simnet::IpAddress::v4(203, 0, 113, 1));

    scanner::Nsec3DictionaryAttack attack(
        internet.network(), simnet::IpAddress::v4(203, 0, 113, 2),
        resolver->address());
    const auto result = attack.run(
        config.apex, scanner::Nsec3DictionaryAttack::default_dictionary(),
        /*harvest_queries=*/16);

    auto validator = internet.make_resolver(
        resolver::ResolverProfile::permissive(),
        simnet::IpAddress::v4(203, 0, 113, 3));
    (void)validator->resolve(*config.apex.prepended("nonexistent"),
                             dns::RrType::kA);
    const std::uint64_t validator_cost =
        validator->stats().last_query_sha1_blocks;
    if (iterations == 0)
      validator_baseline = validator_cost ? validator_cost : 1;

    std::printf("%10u | %22llu %18zu | %22llu %11.0fx\n", iterations,
                static_cast<unsigned long long>(result.offline_sha1_blocks),
                result.cracked.size(),
                static_cast<unsigned long long>(validator_cost),
                static_cast<double>(validator_cost) /
                    static_cast<double>(validator_baseline));
  }

  std::printf(
      "\n'names cracked' is constant: iterations never protect guessable "
      "labels, they only\nscale both columns of cost together. Setting them "
      "to zero loses nothing and spares\nevery validator — zeros are "
      "heroes.\n");
  return 0;
}
