// Tracing-cost micro-bench: runs the Figure 1 domain campaign with the
// trace subsystem compiled in but disabled, then with event tracing
// enabled, and reports the wall-clock delta (best of N reps each).
//
// Acceptance targets (docs/TRACING.md): the disabled path is one branch
// per would-be event, so "off" must match the pre-trace baseline (~0 %),
// and "on" must stay under 5 % on this workload.
//
// Wall-clock numbers are machine-dependent and printed as `#` comments;
// the non-comment lines (stats equality, event and metric totals) are
// deterministic for a fixed (seed, scale, jobs) configuration.
#include <chrono>
#include <utility>

#include "analysis/stats.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace zh;
  const bench::BenchFlags flags = bench::parse_flags(argc, argv);
  const double scale = bench::env_double("ZH_SCALE", 0.001);
  const int reps = static_cast<int>(bench::env_u64("ZH_REPS", 3));
  workload::EcosystemSpec spec(
      {.scale = scale, .seed = bench::env_u64("ZH_SEED", 42)});
  const auto factory = scanner::default_world_factory(spec);

  // Best-of-reps: the minimum is the least noisy wall-clock estimator for
  // a deterministic workload (all variance is scheduling noise).
  const auto run = [&](bool traced, scanner::ParallelCampaignResult& out) {
    double best = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      scanner::ParallelOptions options{.jobs = flags.jobs,
                                       .base_seed = spec.options().seed};
      flags.apply(options);
      options.trace.enabled = traced;
      const auto start = std::chrono::steady_clock::now();
      scanner::ParallelCampaignResult result =
          scanner::run_domain_campaign_parallel(spec, factory, options);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      if (best < 0.0 || secs < best) best = secs;
      out = std::move(result);
    }
    return best;
  };

  scanner::ParallelCampaignResult off;
  scanner::ParallelCampaignResult on;
  const double off_secs = run(false, off);
  const double on_secs = run(true, on);
  const double overhead =
      off_secs > 0.0 ? 100.0 * (on_secs - off_secs) / off_secs : 0.0;

  std::printf("# fig1 campaign at scale %g, --jobs %u, best of %d rep(s)\n",
              scale, flags.jobs, reps);
  std::printf("# tracing off: %.3fs   tracing on: %.3fs   overhead: %+.1f%% "
              "(target < 5%%)\n",
              off_secs, on_secs, overhead);

  const bool identical = off.stats.scanned == on.stats.scanned &&
                         off.stats.dnssec == on.stats.dnssec &&
                         off.stats.nsec3 == on.stats.nsec3 &&
                         off.stats.fully_compliant == on.stats.fully_compliant &&
                         off.queries_issued == on.queries_issued;
  std::printf("campaign stats identical with tracing on: %s\n",
              identical ? "yes" : "NO — tracing perturbed the campaign");
  std::printf("events with tracing off: %llu\n",
              static_cast<unsigned long long>(off.trace.events_emitted()));
  std::printf("events with tracing on: %llu emitted, %llu retained, "
              "%llu ring-dropped\n",
              static_cast<unsigned long long>(on.trace.events_emitted()),
              static_cast<unsigned long long>(on.trace.event_count()),
              static_cast<unsigned long long>(on.trace.events_lost()));
  for (const auto& [name, value] : on.trace.metrics())
    std::printf("metric %s = %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));

  // --trace FILE also works here: exports the traced run's merged stream.
  bench::write_trace(flags, on.trace);
  return identical ? 0 : 1;
}
