// Methodology validation — something only the simulation can do: compare
// the §4.2 prober's *inferred* resolver behaviour against the population's
// ground-truth strata. The paper infers limits from black-box RCODE/AD
// observations; here every resolver's true policy is known, so the
// inference procedure itself can be scored (classification accuracy per
// stratum and overall).
#include <cstdio>
#include <map>

#include "analysis/stats.hpp"
#include "bench_common.hpp"

int main() {
  using namespace zh;
  auto world = bench::build_world(/*with_domains=*/false);
  const double rscale = bench::env_double("ZH_RESOLVER_SCALE", 0.005);

  const auto spec =
      workload::figure3_panel(workload::Panel::kOpenV4, rscale);
  auto population =
      workload::instantiate_panel(*world.internet, spec, 1u << 20);

  scanner::ResolverProber prober(world.internet->network(),
                                 simnet::IpAddress::v4(203, 0, 113, 247),
                                 world.probe_zones);

  struct Score {
    std::uint64_t total = 0;
    std::uint64_t correct = 0;
  };
  std::map<std::string, Score> by_stratum;
  std::uint64_t validators_expected = 0, validators_inferred = 0;

  std::size_t token = 0;
  for (const auto& member : population.members) {
    const auto result =
        prober.probe(member.address, "mv-" + std::to_string(token++));
    if (member.validating) ++validators_expected;
    if (result.validator) ++validators_inferred;

    Score& score = by_stratum[member.stratum];
    ++score.total;

    // Ground-truth expectations per stratum.
    bool correct = false;
    const std::string& s = member.stratum;
    if (s == "non-validating") {
      correct = !result.validator;
    } else if (s == "google-public-dns" || s == "forward:google-public-dns") {
      correct = result.validator && result.insecure_limit &&
                *result.insecure_limit == 100;
    } else if (s == "cloudflare-1.1.1.1" || s == "cisco-opendns" ||
               s == "forward:cloudflare-1.1.1.1" ||
               s == "forward:cisco-opendns") {
      correct = result.validator && result.servfail_limit &&
                *result.servfail_limit == 150;
    } else if (s == "technitium") {
      correct = result.validator && result.servfail_limit &&
                *result.servfail_limit == 100;
    } else if (s == "strict-zero") {
      correct = result.validator && result.servfail_limit &&
                *result.servfail_limit == 0;
    } else if (s == "bind9-9.19.19" || s == "knot-resolver-5.7") {
      correct = result.validator && result.insecure_limit &&
                *result.insecure_limit == 50;
    } else if (s == "permissive-validator") {
      correct = result.validator && !result.implements_item6 &&
                !result.implements_item8;
    } else if (s == "item7-violator") {
      correct = result.validator && result.item7_violation;
    } else if (s == "item12-gap") {
      correct = result.validator && result.item12_gap;
    } else {
      // The 2021 150-limit software family.
      correct = result.validator && result.insecure_limit &&
                *result.insecure_limit == 150;
    }
    if (correct) ++score.correct;
  }

  std::printf("\nProber inference accuracy vs simulation ground truth "
              "(open-ipv4 panel, %zu resolvers)\n\n",
              population.members.size());
  std::printf("%-34s %8s %10s %10s\n", "ground-truth stratum", "count",
              "correct", "accuracy");
  std::printf("%s\n", std::string(66, '-').c_str());
  std::uint64_t total = 0, correct = 0;
  for (const auto& [stratum, score] : by_stratum) {
    total += score.total;
    correct += score.correct;
    std::printf("%-34s %8llu %10llu %9.1f%%\n", stratum.c_str(),
                static_cast<unsigned long long>(score.total),
                static_cast<unsigned long long>(score.correct),
                100.0 * static_cast<double>(score.correct) /
                    static_cast<double>(score.total));
  }
  std::printf("%s\n", std::string(66, '-').c_str());
  std::printf("%-34s %8llu %10llu %9.1f%%\n", "overall",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(correct),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(total));
  std::printf("\nvalidator filter: %llu inferred vs %llu true validators\n",
              static_cast<unsigned long long>(validators_inferred),
              static_cast<unsigned long long>(validators_expected));
  std::printf(
      "\nThe paper can only report what the prober sees; the simulation "
      "confirms the probing\ngrid of §4.2 (it-1..25, 25-steps, 51/101/151) "
      "recovers every deployed threshold\nexactly. Inference errors would "
      "appear here as accuracy below 100%%.\n");
  return 0;
}
