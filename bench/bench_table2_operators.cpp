// Table 2 — the 10 most frequent authoritative name-server operators, the
// number of NSEC3-enabled domains they exclusively serve, and their
// parameter mixes, as recovered by the NS-record aggregation of §5.1.
#include "analysis/stats.hpp"
#include "bench_common.hpp"

namespace {

struct PaperRow {
  const char* operator_name;
  const char* share;
  const char* params;
};

constexpr PaperRow kPaperTable2[] = {
    {"squarespace", "39.4 %", "1/8"},
    {"one-com", "9.5 %", "5/5, 5/4, 1/2, 1/4"},
    {"ovhcloud", "8.4 %", "8/8"},
    {"wix", "5.0 %", "1/8"},
    {"transip", "4.2 %", "0/8, 100/8"},
    {"loopia", "3.6 %", "1/1"},
    {"domainnameshop", "2.7 %", "0/0"},
    {"timeweb", "2.1 %", "3/0"},
    {"hostnet", "1.5 %", "1/4, 0/0"},
    {"hostpoint", "1.3 %", "1/40"},
};

}  // namespace

int main() {
  using namespace zh;
  auto world = bench::build_world();

  scanner::DomainCampaign campaign(*world.internet, *world.spec,
                                   world.scan_resolver->address());
  campaign.run();
  const auto& stats = campaign.stats();

  std::printf("\nTable 2 — top name-server operators of NSEC3-enabled "
              "domains (measured)\n");
  std::printf("%-24s %12s %8s   %s\n", "operator (NS domain)", "# domains",
              "share", "parameter mix (iter/salt-B : share)");
  std::printf("%s\n", std::string(96, '-').c_str());

  double top10 = 0.0;
  for (const auto& [op, count] : stats.operators.top(10)) {
    std::string mix;
    const auto it = stats.operator_params.find(op);
    if (it != stats.operator_params.end()) {
      for (const auto& [params, n] : it->second.top(4)) {
        if (!mix.empty()) mix += ", ";
        mix += params + " : " +
               analysis::format_percent(it->second.share(params), 1);
      }
    }
    const double share = stats.operators.share(op);
    top10 += share;
    std::printf("%-24s %12llu %8s   %s\n", op.c_str(),
                static_cast<unsigned long long>(count),
                analysis::format_percent(share).c_str(), mix.c_str());
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("top-10 operators exclusively serve: measured %s, paper "
              "77.7 %%\n",
              analysis::format_percent(top10).c_str());

  std::printf("\nPaper Table 2 for comparison:\n");
  for (const auto& row : kPaperTable2)
    std::printf("%-24s %8s   %s\n", row.operator_name, row.share, row.params);
  std::printf(
      "\nNote: measured operator identities are the registered domains of "
      "the NS names\n(<operator>.net in the synthetic ecosystem).\n");
  return 0;
}
