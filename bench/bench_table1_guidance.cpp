// Table 1 — the RFC 9276 guidance items for authoritative name servers
// (1-5) and validating resolvers (6-12), each mapped to the module that
// implements or evaluates it in this reproduction, with a live
// demonstration against the probe infrastructure.
#include <cstdio>

#include "bench_common.hpp"

namespace {

struct GuidanceItem {
  int item;
  const char* keyword;
  const char* guidance;
  const char* implemented_by;
};

constexpr GuidanceItem kItems[] = {
    {1, "SHOULD", "prefer NSEC over NSEC3 if its features are not needed",
     "zone::DenialMode (kNsec/kNsec3); measured by scanner::DomainCampaign"},
    {2, "MUST", "set the number of additional iterations to 0",
     "zone::Nsec3Params::iterations; Item 2 compliance in DomainScanResult"},
    {3, "SHOULD NOT", "use a salt",
     "zone::Nsec3Params::salt; Item 3 compliance in DomainScanResult"},
    {4, "NOT RECOMMENDED", "set the opt-out flag for small zones",
     "zone::Nsec3Params::opt_out; opt-out rate in DomainCampaignStats"},
    {5, "MAY", "set opt-out for very large, sparsely signed zones",
     "TLD census: 85.4 % of NSEC3 TLDs use opt-out (workload::TldProfile)"},
    {6, "MAY", "return an insecure response above an iteration limit",
     "resolver::Rfc9276Policy::insecure_limit"},
    {7, "MUST", "verify NSEC3 RRSIGs before trusting the iteration count",
     "resolver::Rfc9276Policy::verify_rrsig_before_downgrade"},
    {8, "MAY", "return SERVFAIL above an iteration limit",
     "resolver::Rfc9276Policy::servfail_limit"},
    {9, "MAY", "ignore responses above an iteration limit",
     "excluded from analysis (non-strict wording), as in the paper"},
    {10, "SHOULD", "attach EDE INFO-CODE 27 when Items 6/8 fire",
     "resolver::Rfc9276Policy::emit_ede27 (+ede_override for Google/OpenDNS)"},
    {11, "MUST NOT", "attach EDE 27 when Item 9 fires",
     "not evaluated (Item 9 excluded), as in the paper"},
    {12, "SHOULD", "use the same threshold for Items 6 and 8",
     "Rfc9276Policy::has_item12_gap(); prober detects downgrade windows"},
};

}  // namespace

int main() {
  using namespace zh;

  std::printf("Table 1 — RFC 9276 guidance and this reproduction's "
              "implementation map\n");
  std::printf("%-4s %-16s %-58s %s\n", "item", "keyword", "guidance",
              "implemented/evaluated by");
  std::printf("%s\n", std::string(150, '-').c_str());
  for (const auto& item : kItems) {
    std::printf("%-4d %-16s %-58s %s\n", item.item, item.keyword,
                item.guidance, item.implemented_by);
  }

  // Live demonstration of the resolver-side items against the testbed.
  auto world = bench::build_world(/*with_domains=*/false);
  auto limited = world.internet->make_resolver(
      resolver::ResolverProfile::bind9_2021(),
      simnet::IpAddress::v4(203, 0, 113, 230));
  auto strict = world.internet->make_resolver(
      resolver::ResolverProfile::cloudflare(),
      simnet::IpAddress::v4(203, 0, 113, 231));
  auto violator = world.internet->make_resolver(
      resolver::ResolverProfile::item7_violator(),
      simnet::IpAddress::v4(203, 0, 113, 232));

  const auto show = [](const char* what, const dns::Message& resp) {
    std::printf("  %-52s -> %s\n", what, resp.summary().c_str());
  };
  std::printf("\nLive demonstrations (probe zones of §4.2):\n");
  show("Item 6  bind9@150: it-200 nx probe",
       limited->resolve(
           dns::Name::must_parse("t1.nx.it-200.rfc9276-in-the-wild.com"),
           dns::RrType::kA));
  show("Item 8  cloudflare@150: it-200 nx probe",
       strict->resolve(
           dns::Name::must_parse("t2.nx.it-200.rfc9276-in-the-wild.com"),
           dns::RrType::kA));
  show("Item 7  compliant: it-2501-expired",
       limited->resolve(dns::Name::must_parse(
                            "t3.nx.it-2501-expired.rfc9276-in-the-wild.com"),
                        dns::RrType::kA));
  show("Item 7  violator: it-2501-expired",
       violator->resolve(dns::Name::must_parse(
                             "t4.nx.it-2501-expired.rfc9276-in-the-wild.com"),
                         dns::RrType::kA));
  auto patched = world.internet->make_resolver(
      resolver::ResolverProfile::knot_2023(),
      simnet::IpAddress::v4(203, 0, 113, 236));
  show("Item 10 EDE 27 on limited response (knot 2023)",
       patched->resolve(
           dns::Name::must_parse("t5.nx.it-500.rfc9276-in-the-wild.com"),
           dns::RrType::kA));
  return 0;
}
