// Real-socket frontend throughput/latency over loopback (src/net).
//
// The frontend's pitch is "point dig/dnsperf/zdns at the simulation"; the
// number that matters is how much real-world measurement traffic one
// epoll thread can absorb. This bench runs the exact zh_serve wiring — an
// EventLoop + Frontend on a worker thread, dispatch into the simulated
// 1.1.1.1 resolver — and drives it with the bundled wire client from the
// main thread, measuring *wall* queries/sec and per-query latency
// (p50/p99) over loopback for each (transport, answer) cell:
//
//   * udp/cached    — positive answer, warm resolver cache: the floor for
//                     per-query frontend overhead (decode, dispatch,
//                     truncation check, encode, sendto).
//   * udp/nxdomain  — NSEC3-heavy negative answer (larger encode, still
//                     cached after the first ask).
//   * tcp/cached    — same cached answer over one persistent framed
//                     stream, serial request/response (RFC 7766 style).
//   * tcp/nxdomain  — ditto for the big negative answer.
//
// The client is blocking and serial, so "qps" here is single-flow
// round-trip throughput (transport + frontend + sim dispatch), not a
// saturation number — it is deliberately the same shape a dnsperf -c 1
// run would see. Emits BENCH_frontend.json (CI uploads it).
//
// Flags (bench_common.hpp): --listen/--port place the listener
// (default 127.0.0.1, ephemeral), --pending-budget/--tcp-idle-ms pass
// through to FrontendConfig. ZH_LIMIT caps queries per cell (default
// 2000; CI uses a reduced grid), ZH_SCALE/ZH_SEED shape the world.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "net/event_loop.hpp"
#include "net/frontend.hpp"
#include "net/wire_client.hpp"

namespace {

using namespace zh;

struct Cell {
  const char* transport;  // "udp" | "tcp"
  const char* answer;     // "cached" | "nxdomain"
  const char* qname;
  std::uint64_t queries = 0;
  std::uint64_t failures = 0;
  std::uint64_t response_bytes = 0;  // size of one (representative) answer
  double wall_seconds = 0.0;
  analysis::Ecdf latency_us = {};

  double qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(queries) / wall_seconds
                              : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::parse_flags(argc, argv);
  const std::size_t limit =
      static_cast<std::size_t>(bench::env_u64("ZH_LIMIT", 2000));

  // Probe infrastructure only: the bench measures transport + dispatch
  // overhead, not ecosystem scale (zh_serve serves the same world shape).
  bench::World world = bench::build_world(/*with_domains=*/false);
  simnet::Network& network = world.internet->network();
  const simnet::IpAddress wire_client = simnet::IpAddress::v4(203, 0, 113, 53);
  const simnet::IpAddress endpoint = simnet::IpAddress::v4(1, 1, 1, 1);

  // Identical wiring to zh_serve, but the loop lives on a worker thread so
  // this thread can play client — hand the network over before spawning.
  network.rebind_owner_thread();
  net::EventLoop loop;
  net::Frontend frontend(
      [&network, wire_client, endpoint](const dns::Message& query) {
        return network.send_tcp(wire_client, endpoint, query);
      },
      net::FrontendConfig{.listen = flags.listen,
                          .port = static_cast<std::uint16_t>(flags.port),
                          .tcp_idle_ms = flags.tcp_idle_ms,
                          .pending_budget = flags.pending_budget});
  if (!loop.valid() || !frontend.start(loop)) {
    std::fprintf(stderr, "FAILED to start frontend: %s\n",
                 frontend.error().c_str());
    return 1;
  }
  std::thread server([&loop] { loop.run(); });
  const std::uint16_t port = frontend.port();
  std::printf("# frontend on %s port %u, %zu queries per cell\n",
              flags.listen.c_str(), port, limit);

  Cell cells[] = {
      {"udp", "cached", "valid.rfc9276-in-the-wild.com"},
      {"udp", "nxdomain", "nx.valid.rfc9276-in-the-wild.com"},
      {"tcp", "cached", "valid.rfc9276-in-the-wild.com"},
      {"tcp", "nxdomain", "nx.valid.rfc9276-in-the-wild.com"},
  };

  net::WireClient client(flags.listen, port);
  std::uint16_t id = 1;
  std::printf("%5s %9s %9s %10s %10s %10s %9s\n", "proto", "answer", "queries",
              "qps", "p50 (us)", "p99 (us)", "resp (B)");
  for (Cell& cell : cells) {
    const dns::Name qname = dns::Name::must_parse(cell.qname);
    const bool tcp = cell.transport[0] == 't';
    // Warm outside the measured window: the first ask runs the full
    // recursive resolution in-sim; every later one is a cache hit, so the
    // cell measures steady-state frontend cost, not one cold resolve.
    {
      const auto warm = client.query(
          dns::Message::make_query(id++, qname, dns::RrType::kA));
      if (!warm.message) {
        std::fprintf(stderr, "FAILED warm query for %s: %s\n", cell.qname,
                     warm.error.c_str());
        loop.stop();
        server.join();
        return 1;
      }
      cell.response_bytes = warm.wire.size();
    }
    net::TcpSession session(flags.listen, port);
    const auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < limit; ++i) {
      const dns::Message query =
          dns::Message::make_query(id++, qname, dns::RrType::kA);
      const auto t0 = std::chrono::steady_clock::now();
      bool ok = false;
      if (tcp) {
        ok = session.send(query) && session.read_frame().has_value();
      } else {
        const auto result = client.query(query);
        ok = result.message.has_value();
      }
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      cell.latency_us.add(us);
      ++cell.queries;
      if (!ok) ++cell.failures;
    }
    cell.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    std::printf("%5s %9s %9llu %10.0f %10lld %10lld %9llu\n", cell.transport,
                cell.answer, static_cast<unsigned long long>(cell.queries),
                cell.qps(), static_cast<long long>(cell.latency_us.percentile(0.5)),
                static_cast<long long>(cell.latency_us.percentile(0.99)),
                static_cast<unsigned long long>(cell.response_bytes));
  }

  loop.stop();
  server.join();
  const net::FrontendCounters& counters = frontend.counters();
  std::printf("# frontend counters: udp=%llu tcp=%llu responses=%llu "
              "truncated=%llu malformed=%llu shed=%llu\n",
              static_cast<unsigned long long>(counters.udp_queries),
              static_cast<unsigned long long>(counters.tcp_queries),
              static_cast<unsigned long long>(counters.responses),
              static_cast<unsigned long long>(counters.truncated),
              static_cast<unsigned long long>(counters.malformed),
              static_cast<unsigned long long>(counters.shed));

  std::uint64_t failures = 0;
  for (const Cell& cell : cells) failures += cell.failures;

  const char* out_path = std::getenv("ZH_OUT");
  if (!out_path || !*out_path) out_path = "BENCH_frontend.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (!out) {
    std::fprintf(stderr, "FAILED writing %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"frontend\",\n");
  std::fprintf(out, "  \"limit\": %zu,\n  \"listen\": \"%s\",\n", limit,
               flags.listen.c_str());
  std::fprintf(out, "  \"failures\": %llu,\n  \"cells\": [\n",
               static_cast<unsigned long long>(failures));
  const std::size_t n = sizeof cells / sizeof cells[0];
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& cell = cells[i];
    std::fprintf(out,
                 "    {\"transport\": \"%s\", \"answer\": \"%s\", "
                 "\"qname\": \"%s\", \"queries\": %llu, \"failures\": %llu, "
                 "\"qps\": %.1f, \"p50_us\": %lld, \"p99_us\": %lld, "
                 "\"response_bytes\": %llu, \"wall_seconds\": %.3f}%s\n",
                 cell.transport, cell.answer, cell.qname,
                 static_cast<unsigned long long>(cell.queries),
                 static_cast<unsigned long long>(cell.failures), cell.qps(),
                 static_cast<long long>(cell.latency_us.percentile(0.5)),
                 static_cast<long long>(cell.latency_us.percentile(0.99)),
                 static_cast<unsigned long long>(cell.response_bytes),
                 cell.wall_seconds, i + 1 < n ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# written %s\n", out_path);
  return failures == 0 ? 0 : 3;
}
