// Latency/timeout sweep: loss probability × NSEC3 iteration count →
// client-observed virtual latency (p50/p99) and timeout rate.
//
// This is the time-shaped view of the paper's story: CVE-2023-50868's hash
// work reaches clients as *latency* (the service model converts SHA-1
// blocks into processing delay), and packet loss turns into retransmission
// waits and, eventually, client-side timeouts (zdns-style RetryPolicy).
// Each probe is flow-keyed by its unique token, so the whole table is a
// pure function of the seed and replays bit-identically.
//
// Flags (bench_common.hpp): --loss pins a single loss value instead of the
// default {0, 5, 10, 20} % sweep; --retries / --timeout shape the client
// policy; --latency / --jitter override the 20 ms ± 5 ms default link.
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "simnet/exchange.hpp"

namespace {

constexpr std::size_t kProbesPerCell = 200;

}  // namespace

int main(int argc, char** argv) {
  using namespace zh;
  bench::BenchFlags flags = bench::parse_flags(argc, argv);
  // This bench is about time: default to a realistic link when the flags
  // leave it unshaped (20 ms base RTT, 5 ms jitter, 1 µs per SHA-1 block).
  if (flags.latency_ms <= 0.0 && flags.jitter_ms <= 0.0) {
    flags.latency_ms = 20.0;
    flags.jitter_ms = 5.0;
  }
  const std::uint64_t seed = bench::env_u64("ZH_SEED", 42);

  // One zone per iteration tier: compliant, the Item-6/8 boundary, the max.
  const std::uint16_t tiers[] = {1, 150, 500};
  std::vector<double> losses = {0.0, 0.05, 0.10, 0.20};
  if (flags.loss > 0.0) losses = {flags.loss};
  const simnet::IpAddress source = simnet::IpAddress::v4(203, 0, 113, 77);

  std::printf("# %zu probes per cell, retry: %u attempts from %lld ms, "
              "link %.0f ms ± %.0f ms, service 1 µs/SHA-1 block\n",
              kProbesPerCell, flags.retry.attempts,
              static_cast<long long>(flags.retry.timeout.millis()),
              flags.latency_ms, flags.jitter_ms);
  std::printf("%6s %8s %12s %12s %10s\n", "loss", "add.it.", "p50 (ms)",
              "p99 (ms)", "timeouts");

  for (const double loss : losses) {
    for (const std::uint16_t tier : tiers) {
      // A fresh world per cell: the resolver's aggressive NSEC3 negative
      // cache (RFC 8198) otherwise accumulates across cells and later rows
      // would answer from cache in a single RTT, skewing the comparison.
      testbed::Internet internet;
      const auto probe_zones = testbed::add_probe_infrastructure(internet);
      internet.build();
      const auto resolver = internet.make_resolver(
          resolver::ResolverProfile::cloudflare(),
          simnet::IpAddress::v4(1, 1, 1, 1));
      simnet::Network& network = internet.network();
      network.set_latency_model(flags.latency_model(seed));
      network.set_service_model(
          {.per_sha1_block = simtime::Duration::from_us(1)});
      network.set_loss(loss, seed);

      const testbed::ProbeZone* zone = nullptr;
      for (const auto& candidate : probe_zones) {
        if (candidate.iterations == tier && !candidate.expired &&
            !candidate.nsec3_expired) {
          zone = &candidate;
          break;
        }
      }
      if (!zone) continue;

      analysis::Ecdf latency_us;
      std::uint64_t timeouts = 0;
      std::uint16_t id = 1;
      // One unrecorded warm-up query per cell so every recorded probe hits
      // a warm root/TLD/DNSKEY cache (only the NXDOMAIN proof varies).
      for (std::size_t j = 0; j < kProbesPerCell + 1; ++j) {
        char token[32];
        std::snprintf(token, sizeof token, "lt-%03u-%05zu",
                      zone->iterations, j);
        network.set_flow(simtime::fnv1a(token));
        const auto qname =
            *zone->apex.prepended("nx")->prepended(token);
        const dns::Message query = dns::Message::make_query(
            id++, qname, dns::RrType::kA, /*dnssec_ok=*/true);
        const simnet::ExchangeOutcome outcome = simnet::exchange(
            network, source, resolver->address(), query, flags.retry);
        if (j == 0) continue;
        latency_us.add(outcome.elapsed.micros());
        if (outcome.timed_out) ++timeouts;
      }
      std::printf("%5.0f%% %8u %12.1f %12.1f %9.1f%%\n", 100.0 * loss,
                  zone->iterations,
                  static_cast<double>(latency_us.percentile(0.50)) / 1000.0,
                  static_cast<double>(latency_us.percentile(0.99)) / 1000.0,
                  100.0 * static_cast<double>(timeouts) /
                      static_cast<double>(kProbesPerCell));
    }
  }
  return 0;
}
