// Ablation: RFC 9276 Item 3 ("SHOULD NOT use a salt") — the rotation-cost
// argument. A salt only helps if rotated frequently, but every rotation
// re-hashes and re-signs the entire zone. This bench measures exactly that
// cost as a function of zone size and iteration count, plus the attacker's
// side: the owner name already acts as a per-zone salt, so a cross-zone
// rainbow table is useless with or without the salt field.
#include <chrono>
#include <cstdio>

#include "crypto/cost_meter.hpp"
#include "dns/dnssec.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

using namespace zh;

namespace {

zone::Zone build_zone(std::size_t names) {
  zone::Zone z(dns::Name::must_parse("example.com"));
  z.add(dns::make_soa(z.apex(), 3600, dns::Name::must_parse("ns1.example.com"),
                      1));
  z.add(dns::make_ns(z.apex(), 3600, dns::Name::must_parse("ns1.example.com")));
  for (std::size_t i = 0; i < names; ++i) {
    z.add(dns::make_a(*z.apex().prepended("host" + std::to_string(i)), 300,
                      10, 0, static_cast<std::uint8_t>(i >> 8),
                      static_cast<std::uint8_t>(i)));
  }
  return z;
}

}  // namespace

int main() {
  std::printf("Salt rotation cost: full re-hash + re-sign of the zone\n\n");
  std::printf("%10s %10s %16s %16s %12s\n", "zone size", "add.it.",
              "SHA-1 blocks", "NSEC3 hashes", "wall time");

  for (const std::size_t names : {100u, 1000u, 10000u}) {
    for (const std::uint16_t iterations : {0, 10, 100}) {
      zone::Zone z = build_zone(names);
      zone::SignerConfig config;
      config.nsec3.iterations = iterations;
      config.nsec3.salt = {0xab, 0xcd, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89};

      crypto::CostMeter::reset();
      const auto start = std::chrono::steady_clock::now();
      zone::sign_zone(z, config);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      std::printf("%10zu %10u %16llu %16llu %10.1fms\n", names, iterations,
                  static_cast<unsigned long long>(
                      crypto::CostMeter::sha1_blocks()),
                  static_cast<unsigned long long>(
                      crypto::CostMeter::nsec3_hashes()),
                  ms);
    }
  }

  std::printf(
      "\nEvery salt change pays the full column above again — for a 10 M-name "
      "TLD zone at 100\niterations that is ~10^9 SHA-1 blocks per rotation, "
      "which is why salts are never\nrotated in practice and RFC 9276 calls "
      "them useless.\n");

  // The rainbow-table argument: identical labels in different zones hash
  // differently even with no salt, because the FQDN (which embeds the zone)
  // is what gets hashed.
  const auto hash_in = [](const char* zone_name) {
    const auto name = dns::Name::must_parse(std::string("www.") + zone_name);
    return dns::nsec3_hash_name(name, {}, 0);
  };
  const auto a = hash_in("alpha.example");
  const auto b = hash_in("beta.example");
  std::printf(
      "\nPer-zone saltiness of the owner name itself (Item 3 rationale):\n"
      "  H(www.alpha.example) == H(www.beta.example)?  %s\n"
      "A cross-zone precomputed table is impossible regardless of the salt "
      "field.\n",
      a == b ? "yes (!)" : "no");
  return 0;
}
