// CVE-2023-50868 cost study — resolver-side hash work for validating NSEC3
// denial proofs as a function of the zone's additional-iteration count and
// salt length. Reproduces the shape of Gruza et al. (WOOT'24): the paper
// cites up to a 72× CPU-instruction amplification; here the proportional
// quantity is SHA-1 compression-function invocations, metered inside the
// resolver only (authoritative-side work is excluded by the network's
// receiver accounting).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace zh;
  auto world = bench::build_world(/*with_domains=*/false);

  // A permissive validator — no RFC 9276 limit below the RFC 5155 ceiling —
  // is the vulnerable configuration.
  auto vulnerable = world.internet->make_resolver(
      resolver::ResolverProfile::permissive(),
      simnet::IpAddress::v4(203, 0, 113, 233));
  // A patched validator (limit 50) and a SERVFAIL-at-150 one for contrast.
  auto patched = world.internet->make_resolver(
      resolver::ResolverProfile::bind9_2023(),
      simnet::IpAddress::v4(203, 0, 113, 234));
  auto strict = world.internet->make_resolver(
      resolver::ResolverProfile::cloudflare(),
      simnet::IpAddress::v4(203, 0, 113, 235));

  std::printf("\nResolver-side SHA-1 blocks per NXDOMAIN validation "
              "(one closest-encloser proof)\n");
  std::printf("%8s %14s %14s %14s %16s\n", "add.it.", "permissive",
              "patched@50", "servfail@150", "amplification");

  std::uint64_t baseline = 0;
  int token = 0;
  for (const std::uint16_t n :
       {0, 1, 5, 10, 25, 50, 100, 150, 200, 300, 400, 500}) {
    const std::string label = n == 0 ? "valid" : "it-" + std::to_string(n);
    const dns::Name qname = dns::Name::must_parse(
        "c" + std::to_string(token++) + ".nx." + label +
        ".rfc9276-in-the-wild.com");

    (void)vulnerable->resolve(qname, dns::RrType::kA);
    const std::uint64_t cost_vulnerable =
        vulnerable->stats().last_query_sha1_blocks;
    (void)patched->resolve(qname, dns::RrType::kA);
    const std::uint64_t cost_patched = patched->stats().last_query_sha1_blocks;
    (void)strict->resolve(qname, dns::RrType::kA);
    const std::uint64_t cost_strict = strict->stats().last_query_sha1_blocks;

    if (n == 0) baseline = cost_vulnerable ? cost_vulnerable : 1;
    std::printf("%8u %14llu %14llu %14llu %15.1fx\n", n,
                static_cast<unsigned long long>(cost_vulnerable),
                static_cast<unsigned long long>(cost_patched),
                static_cast<unsigned long long>(cost_strict),
                static_cast<double>(cost_vulnerable) /
                    static_cast<double>(baseline));
  }

  std::printf(
      "\nPaper/Gruza et al. shape: validation work grows linearly with the "
      "iteration count\n(up to 72x CPU instructions at high counts); "
      "limit-enforcing resolvers stay flat\nonce the limit trips — the "
      "motivation for RFC 9276's zero-iterations rule.\n");

  // Salt-length sweep at a fixed iteration count: salt bytes lengthen every
  // SHA-1 message, adding blocks per iteration.
  std::printf("\nEffect of salt length (zone it-25, resolver-side blocks "
              "per validation):\n");
  std::printf("  (the probe zones are saltless; the numbers below are "
              "computed directly)\n");
  std::printf("%12s %16s\n", "salt bytes", "SHA-1 blocks");
  const auto owner =
      dns::Name::must_parse("a-rather-long-probe-name.example.com");
  for (const std::size_t salt_len : {0u, 8u, 16u, 32u, 44u, 64u, 128u}) {
    const std::vector<std::uint8_t> salt(salt_len, 0xab);
    crypto::CostMeter::reset();
    (void)dns::nsec3_hash_name(
        owner, std::span<const std::uint8_t>(salt.data(), salt.size()), 25);
    std::printf("%12zu %16llu\n", salt_len,
                static_cast<unsigned long long>(
                    crypto::CostMeter::sha1_blocks()));
  }
  return 0;
}
