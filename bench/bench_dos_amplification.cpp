// DoS amplification sweep: NSEC3 iteration count × concurrent clients →
// queueing delay (p50/p99), drop rate and latency amplification at a
// bounded-worker victim resolver.
//
// This is the CVE-2023-50868 story with the authoritative-side half
// attached (simtime/queue.hpp): the hash cost of a high-iteration
// closest-encloser proof occupies one of the victim's worker slots for the
// whole resolution, so K staggered concurrent probes contend — the backlog
// (and with it every bystander's waiting time) grows with iterations ×
// concurrency, and past the backlog bound the victim sheds load. With one
// client (K=1) the queue never fills and the row reproduces the plain
// service-time latency, which is why the amplification column is
// normalised against it.
//
// Determinism: every cell is a fresh world; clients are flow-keyed by a
// per-cell token, arrivals are explicit offsets (simnet::concurrent_exchange),
// and --jobs only distributes *cells* over threads (each worker builds its
// own world in-thread), so the table is bit-identical for any --jobs value.
//
// `--target operator` moves the victim to the authoritative side: a hosting
// operator's PoP (testbed::Internet::set_operator_queue) serving one
// NSEC3 zone at the cell's iteration count, with clients sending unique
// NXDOMAIN queries (DO=1) straight at the PoP. Each negative answer costs
// the server the closest-encloser/next-closer/wildcard NSEC3 hashes, so
// the same iterations × concurrency contention plays out in the zone
// owner's queue instead of the resolver's.
//
// Flags (bench_common.hpp vocabulary, plus bench-specific ones):
//   --jobs N        worker threads over cells (default 1)
//   --latency MS    base link RTT (default 1 ms; jitter defaults to 0)
//   --retries/--timeout   client retry policy (zdns defaults)
//   --target T      victim side: resolver (default) or operator
//   --workers N     victim worker slots (default 2)
//   --backlog N     victim backlog bound (default 16)
//   --spacing-us U  arrival stagger between clients (default 250 µs)
//   --servfail      shed with SERVFAIL + EDE 23 instead of silent drop
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "simnet/batch.hpp"

namespace {

using namespace zh;

constexpr std::uint16_t kTiers[] = {1, 150, 500};
constexpr unsigned kClientCounts[] = {1, 4, 16, 64};

struct Cell {
  std::uint16_t iterations = 0;
  unsigned clients = 0;
};

enum class Target { kResolver, kOperator };

struct CellResult {
  double p50_wait_ms = 0.0;
  double p99_wait_ms = 0.0;
  double drop_rate = 0.0;     // shed deliveries / offered deliveries
  double p99_elapsed_ms = 0.0;
  double mean_elapsed_ms = 0.0;
  double utilisation = 0.0;   // busy time / (makespan × workers)
  std::uint64_t timeouts = 0;
};

CellResult run_cell(const Cell& cell, const bench::BenchFlags& flags,
                    const simtime::QueueModel& queue, Target target,
                    simtime::Duration spacing, std::uint64_t seed) {
  // A fresh world per cell: the resolver's aggressive NSEC3 negative cache
  // (RFC 8198) and the queue's counters must not leak across cells.
  testbed::Internet internet;
  std::vector<testbed::ProbeZone> probe_zones;
  std::unique_ptr<resolver::RecursiveResolver> victim_resolver;
  simnet::IpAddress victim_addr;
  dns::Name query_apex = dns::Name::root();

  if (target == Target::kResolver) {
    probe_zones = testbed::add_probe_infrastructure(internet);
    internet.build();

    // The victim: a permissive validator (no iteration cut-off, no deadline
    // — it validates even a 500-iteration proof in full) with a bounded
    // worker pool, installed through the profile so the override path is
    // exercised.
    resolver::ResolverProfile profile =
        resolver::ResolverProfile::permissive();
    profile.queue = queue;
    victim_resolver =
        internet.make_resolver(profile, simnet::IpAddress::v4(10, 66, 0, 1));
    victim_addr = victim_resolver->address();

    const testbed::ProbeZone* zone = nullptr;
    for (const auto& candidate : probe_zones) {
      if (candidate.iterations == cell.iterations && !candidate.expired &&
          !candidate.nsec3_expired) {
        zone = &candidate;
        break;
      }
    }
    if (!zone) return {};
    query_apex = zone->apex;
  } else {
    // The victim: a hosting operator's PoP with its own bounded worker
    // pool (the testbed's authoritative-side queue override), serving one
    // NSEC3 zone at the cell's iteration count. Clients hit the PoP
    // directly, so every unique NXDOMAIN costs the *server* the denial
    // hashes — no resolver in the path.
    const std::size_t op = internet.add_operator("victim-op");
    internet.set_operator_queue(op, queue);
    testbed::DomainConfig config;
    config.apex = dns::Name::must_parse("dos-victim.net");
    config.nsec3 = {.iterations = cell.iterations, .salt = {},
                    .opt_out = false};
    config.host = internet.hosting_operator(op).address_v4;
    internet.add_domain(config);
    internet.build();
    victim_addr = internet.hosting_operator(op).address_v4;
    query_apex = config.apex;
  }

  simnet::Network& network = internet.network();
  network.set_latency_model(flags.latency_model(seed));
  network.set_service_model({.per_sha1_block = simtime::Duration::from_us(1)});

  char prefix[32];
  std::snprintf(prefix, sizeof prefix, "dos-%03u-%03u", cell.iterations,
                cell.clients);

  // One warm-up probe so every batch client hits a warm root/TLD/DNSKEY
  // cache and only the (unique-name) NXDOMAIN proof fetch remains. The
  // authoritative victim is stateless per query — nothing to warm.
  if (target == Target::kResolver) {
    const std::string token = std::string(prefix) + "-warm";
    network.set_flow(simtime::fnv1a(token));
    const auto qname = *query_apex.prepended("nx")->prepended(token);
    (void)simnet::exchange(
        network, simnet::IpAddress::v4(203, 0, 113, 250), victim_addr,
        dns::Message::make_query(1, qname, dns::RrType::kA,
                                 /*dnssec_ok=*/true),
        flags.retry);
  }

  std::vector<simnet::BatchClient> clients;
  clients.reserve(cell.clients);
  for (unsigned i = 0; i < cell.clients; ++i) {
    char token[48];
    std::snprintf(token, sizeof token, "%s-c%03u", prefix, i);
    simnet::BatchClient client;
    client.source = simnet::IpAddress::v4(203, 0, 113,
                                          static_cast<std::uint8_t>(1 + i));
    const auto qname = *query_apex.prepended("nx")->prepended(token);
    client.query = dns::Message::make_query(
        static_cast<std::uint16_t>(100 + i), qname, dns::RrType::kA,
        /*dnssec_ok=*/true);
    client.flow = simtime::fnv1a(token);
    client.offset = spacing * static_cast<std::int64_t>(i);
    clients.push_back(std::move(client));
  }

  const simtime::QueueCounters before = network.queue_counters();
  const simnet::BatchResult batch = simnet::concurrent_exchange(
      network, victim_addr, clients, flags.retry);
  const simtime::QueueCounters& after = network.queue_counters();

  analysis::Ecdf wait_us;
  analysis::Ecdf elapsed_us;
  double elapsed_sum_ms = 0.0;
  CellResult result;
  for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
    wait_us.add(batch.queue_waits[i].micros());
    elapsed_us.add(batch.outcomes[i].elapsed.micros());
    elapsed_sum_ms +=
        static_cast<double>(batch.outcomes[i].elapsed.micros()) / 1000.0;
    if (batch.outcomes[i].timed_out) ++result.timeouts;
  }
  const std::uint64_t offered = (after.admitted - before.admitted) +
                                (after.dropped - before.dropped);
  result.p50_wait_ms =
      static_cast<double>(wait_us.percentile(0.50)) / 1000.0;
  result.p99_wait_ms =
      static_cast<double>(wait_us.percentile(0.99)) / 1000.0;
  result.drop_rate =
      offered == 0 ? 0.0
                   : static_cast<double>(after.dropped - before.dropped) /
                         static_cast<double>(offered);
  result.p99_elapsed_ms =
      static_cast<double>(elapsed_us.percentile(0.99)) / 1000.0;
  result.mean_elapsed_ms =
      batch.outcomes.empty()
          ? 0.0
          : elapsed_sum_ms / static_cast<double>(batch.outcomes.size());
  result.utilisation = simtime::QueueCounters{
      .busy_ns = after.busy_ns - before.busy_ns}
                           .utilisation(batch.makespan, queue.workers);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::parse_flags(argc, argv);
  // This bench is about contention, not link quality: default to a fast
  // clean link so queueing (not RTT) dominates the table.
  if (flags.latency_ms <= 0.0 && flags.jitter_ms <= 0.0)
    flags.latency_ms = 1.0;
  const std::uint64_t seed = bench::env_u64("ZH_SEED", 42);

  simtime::QueueModel queue;
  queue.workers = 2;
  queue.backlog = 16;
  queue.shed = simtime::QueueModel::Shed::kDrop;
  long spacing_us = 250;
  Target target = Target::kResolver;
  for (int i = 1; i < argc; ++i) {
    const auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) != 0) return nullptr;
      if (argv[i][len] == '=') return argv[i] + len + 1;
      if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--workers")) {
      queue.workers = static_cast<unsigned>(std::atol(v));
    } else if (const char* v = value_of("--backlog")) {
      queue.backlog = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value_of("--spacing-us")) {
      spacing_us = std::atol(v);
    } else if (const char* v = value_of("--target")) {
      if (std::strcmp(v, "operator") == 0) {
        target = Target::kOperator;
      } else if (std::strcmp(v, "resolver") != 0) {
        std::fprintf(stderr, "# unknown --target '%s' (resolver|operator)\n",
                     v);
      }
    } else if (std::strcmp(argv[i], "--servfail") == 0) {
      queue.shed = simtime::QueueModel::Shed::kServfail;
    }
  }
  const simtime::Duration spacing = simtime::Duration::from_us(spacing_us);

  std::vector<Cell> cells;
  for (const std::uint16_t tier : kTiers)
    for (const unsigned k : kClientCounts)
      cells.push_back({tier, k});

  std::printf(
      "# victim: %s, %u workers, backlog %zu, shed=%s\n"
      "# link %.1f ms RTT, service 1 µs/SHA-1 block, arrivals every %ld µs\n",
      target == Target::kResolver ? "permissive validator (resolver)"
                                  : "hosting-operator PoP (authoritative)",
      queue.workers, queue.backlog,
      queue.shed == simtime::QueueModel::Shed::kDrop ? "drop" : "servfail",
      flags.latency_ms, spacing_us);

  // --jobs parallelises *cells*; each worker builds its own world inside
  // its own thread (simnet's one-network-per-thread contract), and results
  // land in the fixed cell order, so output is identical for any jobs.
  std::vector<CellResult> results(cells.size());
  const unsigned jobs =
      std::min<unsigned>(flags.jobs, static_cast<unsigned>(cells.size()));
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  const auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < cells.size();
         i = next.fetch_add(1))
      results[i] = run_cell(cells[i], flags, queue, target, spacing, seed);
  };
  for (unsigned t = 1; t < jobs; ++t) workers.emplace_back(drain);
  drain();
  for (auto& worker : workers) worker.join();

  std::printf("%8s %8s %12s %12s %8s %8s %13s %7s %6s\n", "add.it.",
              "clients", "p50 wait", "p99 wait", "drops", "t/outs",
              "p99 latency", "ampl.", "util.");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = results[i];
    // Amplification: mean client-observed latency relative to the same
    // tier's uncontended (K=1) cell.
    double baseline = 0.0;
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (cells[j].iterations == cells[i].iterations &&
          cells[j].clients == 1) {
        baseline = results[j].mean_elapsed_ms;
        break;
      }
    }
    std::printf(
        "%8u %8u %9.2f ms %9.2f ms %7.1f%% %8llu %10.2f ms %6.2fx %5.0f%%\n",
        cells[i].iterations, cells[i].clients, r.p50_wait_ms, r.p99_wait_ms,
        100.0 * r.drop_rate, static_cast<unsigned long long>(r.timeouts),
        r.p99_elapsed_ms,
        baseline > 0.0 ? r.mean_elapsed_ms / baseline : 1.0,
        100.0 * r.utilisation);
  }
  return 0;
}
