// Shared setup for the reproduction benches: builds the simulated Internet
// + synthetic population at a configurable scale.
//
// Environment knobs:
//   ZH_SCALE           population scale (default 0.001 = 1:1000 of 302 M)
//   ZH_RESOLVER_SCALE  resolver-population scale (default 0.01 = 1:100)
//   ZH_SEED            generator seed (default 42)
//   ZH_JOBS            worker threads (default 1; also --jobs N / --jobs=N)
//   ZH_LOSS            query loss probability (also --loss P)
//   ZH_RETRIES         client wire attempts (also --retries N)
//   ZH_TIMEOUT_MS      first attempt timeout in ms (also --timeout MS)
//   ZH_LATENCY_MS      base link RTT in ms (also --latency MS)
//   ZH_JITTER_MS       uniform RTT jitter in ms (also --jitter MS)
//   ZH_TRACE           trace output file (also --trace FILE; enables tracing)
//   ZH_TRACE_FORMAT    jsonl | chrome (also --trace-format F; default jsonl)
//   ZH_PROCS           worker processes (default 1; also --procs N; 0 = all
//                      hardware threads) — see bench_procs.hpp
//   ZH_ENGINE          blocking | async scan engine (also --engine E)
//   ZH_MAX_INFLIGHT    concurrent resolutions per worker when the async
//                      engine is selected (also --max-inflight N)
//   ZH_LISTEN          frontend listen address (also --listen A; zh_serve
//                      and bench_frontend — see src/net/frontend.hpp)
//   ZH_PORT            frontend UDP+TCP port (also --port N; 0 = ephemeral)
//   ZH_TCP_IDLE_MS     frontend TCP idle-reap timeout (also --tcp-idle-ms)
//   ZH_PENDING_BUDGET  frontend pending-response budget before shedding
//                      (also --pending-budget N)
//   ZH_SHA1_IMPL       scalar | ssse3 | avx2 SHA-1 batch kernel (also
//                      --sha1-impl I; default: widest the host supports —
//                      see src/crypto/sha1_mb.hpp and docs/PERFORMANCE.md)
//   ZH_CHAIN_MEMO      NSEC3 chain memo capacity, 0 disables (also
//                      --chain-memo N; default 4096, auto-grown to the
//                      domain population — see src/zone/chain_memo.hpp)
//   ZH_AGGRESSIVE_NSEC on | off RFC 8198 aggressive NSEC3 caching + RFC
//                      9520 failure caching in the scan resolver (also
//                      --aggressive-nsec E; default off — off is
//                      byte-identical to the goldens)
//   ZH_NEG_CACHE_CAP   aggressive-cache interval capacity (also
//                      --neg-cache-cap N; default 4096)
//   ZH_FAILURE_CACHE_TTL  first-failure cache TTL in ms (also
//                      --failure-cache-ttl MS; default 5000, clamped into
//                      RFC 9520's [1 s, 5 min])
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha1_mb.hpp"
#include "scanner/campaign.hpp"
#include "scanner/parallel.hpp"
#include "simtime/latency.hpp"
#include "simtime/simtime.hpp"
#include "testbed/internet.hpp"
#include "trace/export.hpp"
#include "workload/install.hpp"
#include "workload/resolver_population.hpp"
#include "zone/chain_memo.hpp"

namespace zh::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

/// Strict non-negative integer from the environment. atoll would turn
/// ZH_RETRIES=-3 into 18446744073709551613 attempts and ZH_JOBS=banana into
/// 0 silently; instead anything that is not a whole base-10 non-negative
/// integer is rejected with a stderr diagnostic and the fallback is used.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0' || parsed < 0) {
    std::fprintf(stderr,
                 "# %s='%s' is not a non-negative integer; using %llu\n", name,
                 value, static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

/// Every bench shares one flag vocabulary (parsed by parse_flags below):
///   --jobs N / --jobs=N / -jN   worker threads (0 = all hardware threads)
///   --loss P                    per-query drop probability in [0, 1]
///   --retries N                 client wire attempts (zdns default 3)
///   --timeout MS                first attempt timeout in milliseconds
///   --latency MS                base link RTT in milliseconds
///   --jitter MS                 uniform RTT jitter in milliseconds
///   --trace FILE                write the merged event trace to FILE
///   --trace-format F            jsonl (default) or chrome
///   --engine E                  blocking (default) or async scan engine —
///                               campaign outputs are engine-invariant
///   --max-inflight N            concurrent resolutions per worker (async)
///   --listen A                  frontend listen address (default 127.0.0.1)
///   --port N                    frontend UDP+TCP port (0 = ephemeral)
///   --tcp-idle-ms MS            frontend TCP idle-reap timeout
///   --pending-budget N          frontend shed threshold (buffered responses)
///   --procs N                   worker processes (0 = all hardware threads)
///   --shard S --of K            run only process sub-shard S of K
///   --emit-shard BASE           write shard artefacts under BASE (worker
///                               mode — implies --shard/--of)
///   --merge-shards FILE...      merge existing artefacts instead of
///                               scanning (consumes all remaining args)
///   --sha1-impl I               force the SHA-1 batch kernel (scalar,
///                               ssse3, avx2) — outputs are impl-invariant
///   --chain-memo N              NSEC3 chain memo capacity (0 disables) —
///                               outputs are memo-invariant
///   --aggressive-nsec E         on or off (default): RFC 8198 synthesis +
///                               RFC 9520 failure caching in the scan
///                               resolver — off is byte-identical to goldens
///   --neg-cache-cap N           aggressive-cache interval capacity
///   --failure-cache-ttl MS      first-failure cache TTL in milliseconds
/// Unknown flags are ignored, so benches can add their own on top.
struct BenchFlags {
  unsigned jobs = 1;
  double loss = 0.0;
  simtime::RetryPolicy retry{};
  double latency_ms = 0.0;
  double jitter_ms = 0.0;
  /// Scan engine per worker thread; outputs are engine-invariant, so this
  /// is purely a throughput knob (see scanner/async_engine.hpp).
  scanner::Engine engine = scanner::Engine::kBlocking;
  std::size_t max_inflight = 1024;
  /// Real-socket frontend knobs (zh_serve / bench_frontend; mirror
  /// net::FrontendConfig — see src/net/frontend.hpp).
  std::string listen = "127.0.0.1";
  unsigned port = 0;  // 0 = ephemeral, read back from Frontend::port()
  std::int64_t tcp_idle_ms = 10000;
  std::size_t pending_budget = 512;
  std::string trace_path;
  trace::Format trace_format = trace::Format::kJsonl;
  /// Process-level fan-out (bench_procs.hpp). 1 = in-process only.
  unsigned procs = 1;
  /// Worker-mode sub-shard: this process covers positions ≡ shard (mod of)
  /// and writes artefacts under `emit_shard` instead of printing results.
  unsigned shard = 0;
  unsigned of = 0;
  std::string emit_shard;
  /// Merge-mode inputs: decode + merge these artefacts, run nothing.
  std::vector<std::string> merge_shards;
  /// SHA-1 batch kernel forced via --sha1-impl (already clamped to a
  /// supported implementation and installed); nullopt = CPUID default.
  std::optional<crypto::Sha1Impl> sha1_impl;
  /// NSEC3 chain memo capacity forced via --chain-memo (already installed
  /// as the process default); nullopt = env/default sizing.
  std::optional<std::size_t> chain_memo;
  /// RFC 8198 aggressive NSEC3 caching (+ RFC 9520 failure caching) in the
  /// scan resolver / synth-capable panels. nullopt = off, the golden-stable
  /// default; set via --aggressive-nsec / ZH_AGGRESSIVE_NSEC.
  std::optional<bool> aggressive_nsec;
  std::size_t neg_cache_cap = 4096;
  std::int64_t failure_cache_ttl_ms = 5000;
  /// This binary (argv[0]) and the arguments a worker re-exec needs —
  /// everything parsed above minus the process-orchestration and trace
  /// flags (workers get their sub-shard flags appended by the spawner).
  std::string exe;
  std::vector<std::string> worker_args;

  bool worker_mode() const noexcept { return !emit_shard.empty(); }
  bool merge_mode() const noexcept { return !merge_shards.empty(); }

  /// True when any flag moves virtual time (loss forces timeout waits).
  bool time_shaped() const noexcept {
    return loss > 0.0 || latency_ms > 0.0 || jitter_ms > 0.0;
  }

  bool trace_enabled() const noexcept { return !trace_path.empty(); }

  bool aggressive() const noexcept { return aggressive_nsec.value_or(false); }

  /// Turns the aggressive-cache flags on in `profile` — a no-op while the
  /// capability is off, which keeps synth-off runs byte-identical to the
  /// goldens (the profile, metrics and caches are all untouched).
  void apply_aggressive(resolver::ResolverProfile& profile) const {
    if (!aggressive()) return;
    profile.enable_aggressive(
        neg_cache_cap, simtime::Duration::from_ms(failure_cache_ttl_ms));
  }

  /// The scan-resolver profile campaign benches hand to
  /// scanner::default_world_factory: the historical Cloudflare profile,
  /// with the aggressive caches switched on when the flags ask for them.
  resolver::ResolverProfile scan_profile() const {
    resolver::ResolverProfile profile =
        resolver::ResolverProfile::cloudflare();
    apply_aggressive(profile);
    return profile;
  }

  simtime::LatencyModel latency_model(std::uint64_t seed) const {
    if (latency_ms <= 0.0 && jitter_ms <= 0.0) return {};
    return simtime::LatencyModel(
        simtime::Duration::from_us(
            static_cast<std::int64_t>(latency_ms * 1000.0)),
        simtime::Duration::from_us(
            static_cast<std::int64_t>(jitter_ms * 1000.0)),
        seed);
  }

  /// Installs every parsed flag into the parallel-engine options struct —
  /// the whole hand-off lives here so a flag can't silently stop short of
  /// the engine (--trace-format used to).
  void apply(scanner::ParallelOptions& options) const {
    options.jobs = jobs;
    options.engine = engine;
    options.max_inflight = max_inflight;
    options.loss_probability = loss;
    options.retry = retry;
    options.latency = latency_model(options.base_seed);
    options.trace.enabled = trace_enabled();
    options.trace.format = trace_format;
    if (worker_mode()) {
      options.shard_index = shard;
      options.shard_count = of;
    }
  }
};

/// "blocking" / "async" → the engine enum; nullopt for anything else.
inline std::optional<scanner::Engine> parse_engine(const char* name) {
  if (std::strcmp(name, "blocking") == 0) return scanner::Engine::kBlocking;
  if (std::strcmp(name, "async") == 0) return scanner::Engine::kAsync;
  return std::nullopt;
}

/// "on"/"1" → true, "off"/"0" → false; nullopt for anything else.
inline std::optional<bool> parse_on_off(const char* value) {
  if (std::strcmp(value, "on") == 0 || std::strcmp(value, "1") == 0)
    return true;
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0)
    return false;
  return std::nullopt;
}

/// Parses the shared flag vocabulary; environment variables (ZH_JOBS,
/// ZH_LOSS, ZH_RETRIES, ZH_TIMEOUT_MS, ZH_LATENCY_MS, ZH_JITTER_MS) give
/// the defaults, command-line flags override. `--flag V` and `--flag=V`
/// both work.
inline BenchFlags parse_flags(int argc, char** argv) {
  BenchFlags flags;
  if (argc > 0 && argv[0]) flags.exe = argv[0];
  long jobs = static_cast<long>(env_u64("ZH_JOBS", 1));
  long procs = static_cast<long>(env_u64("ZH_PROCS", 1));
  flags.loss = env_double("ZH_LOSS", 0.0);
  flags.retry.attempts =
      static_cast<unsigned>(env_u64("ZH_RETRIES", flags.retry.attempts));
  flags.retry.timeout = simtime::Duration::from_ms(static_cast<std::int64_t>(
      env_u64("ZH_TIMEOUT_MS",
              static_cast<std::uint64_t>(flags.retry.timeout.millis()))));
  flags.latency_ms = env_double("ZH_LATENCY_MS", 0.0);
  flags.jitter_ms = env_double("ZH_JITTER_MS", 0.0);
  if (const char* engine = std::getenv("ZH_ENGINE")) {
    if (const auto parsed = parse_engine(engine)) {
      flags.engine = *parsed;
    } else {
      std::fprintf(stderr, "# unknown ZH_ENGINE '%s' (blocking|async)\n",
                   engine);
    }
  }
  flags.max_inflight = static_cast<std::size_t>(
      env_u64("ZH_MAX_INFLIGHT", flags.max_inflight));
  if (const char* listen = std::getenv("ZH_LISTEN")) flags.listen = listen;
  flags.port = static_cast<unsigned>(env_u64("ZH_PORT", flags.port) & 0xffff);
  flags.tcp_idle_ms = static_cast<std::int64_t>(
      env_u64("ZH_TCP_IDLE_MS", static_cast<std::uint64_t>(flags.tcp_idle_ms)));
  flags.pending_budget = static_cast<std::size_t>(
      env_u64("ZH_PENDING_BUDGET", flags.pending_budget));
  if (const char* path = std::getenv("ZH_TRACE")) flags.trace_path = path;
  if (const char* format = std::getenv("ZH_TRACE_FORMAT")) {
    if (const auto parsed = trace::parse_format(format))
      flags.trace_format = *parsed;
  }
  if (const char* aggressive = std::getenv("ZH_AGGRESSIVE_NSEC")) {
    if (const auto parsed = parse_on_off(aggressive)) {
      flags.aggressive_nsec = *parsed;
    } else {
      std::fprintf(stderr, "# unknown ZH_AGGRESSIVE_NSEC '%s' (on|off)\n",
                   aggressive);
    }
  }
  flags.neg_cache_cap = static_cast<std::size_t>(
      env_u64("ZH_NEG_CACHE_CAP", flags.neg_cache_cap));
  flags.failure_cache_ttl_ms = static_cast<std::int64_t>(env_u64(
      "ZH_FAILURE_CACHE_TTL",
      static_cast<std::uint64_t>(flags.failure_cache_ttl_ms)));

  // `--flag V` / `--flag=V`: returns the value string, or nullptr.
  const auto value_of = [&](int& i, const char* name) -> const char* {
    const char* arg = argv[i];
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return nullptr;
    if (arg[len] == '=') return arg + len + 1;
    if (arg[len] == '\0' && i + 1 < argc) return argv[++i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const int first = i;
    // Flags a worker re-exec must NOT inherit: process orchestration (the
    // spawner appends the right --shard/--of/--emit-shard; --procs would
    // fork-bomb) and tracing (K workers racing for one trace file).
    bool forward = true;
    if (const char* v = value_of(i, "--jobs")) {
      jobs = std::atol(v);
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      jobs = std::atol(arg + 2);
    } else if (const char* v = value_of(i, "--loss")) {
      flags.loss = std::atof(v);
    } else if (const char* v = value_of(i, "--retries")) {
      flags.retry.attempts = static_cast<unsigned>(std::atol(v));
    } else if (const char* v = value_of(i, "--timeout")) {
      flags.retry.timeout = simtime::Duration::from_ms(std::atol(v));
    } else if (const char* v = value_of(i, "--latency")) {
      flags.latency_ms = std::atof(v);
    } else if (const char* v = value_of(i, "--jitter")) {
      flags.jitter_ms = std::atof(v);
    } else if (const char* v = value_of(i, "--engine")) {
      if (const auto parsed = parse_engine(v)) {
        flags.engine = *parsed;
      } else {
        std::fprintf(stderr, "# unknown --engine '%s' (blocking|async)\n", v);
      }
    } else if (const char* v = value_of(i, "--max-inflight")) {
      const long parsed = std::atol(v);
      if (parsed > 0) flags.max_inflight = static_cast<std::size_t>(parsed);
    } else if (const char* v = value_of(i, "--listen")) {
      flags.listen = v;
    } else if (const char* v = value_of(i, "--port")) {
      const long parsed = std::atol(v);
      if (parsed >= 0 && parsed <= 65535)
        flags.port = static_cast<unsigned>(parsed);
      else
        std::fprintf(stderr, "# --port '%s' out of range [0, 65535]\n", v);
    } else if (const char* v = value_of(i, "--tcp-idle-ms")) {
      flags.tcp_idle_ms = std::atol(v);
    } else if (const char* v = value_of(i, "--pending-budget")) {
      const long parsed = std::atol(v);
      if (parsed > 0) flags.pending_budget = static_cast<std::size_t>(parsed);
    } else if (const char* v = value_of(i, "--trace-format")) {
      forward = false;
      if (const auto parsed = trace::parse_format(v)) {
        flags.trace_format = *parsed;
      } else {
        std::fprintf(stderr, "# unknown --trace-format '%s' (jsonl|chrome)\n",
                     v);
      }
    } else if (const char* v = value_of(i, "--trace")) {
      forward = false;
      flags.trace_path = v;
    } else if (const char* v = value_of(i, "--procs")) {
      forward = false;
      procs = std::atol(v);
    } else if (const char* v = value_of(i, "--shard")) {
      forward = false;
      flags.shard = static_cast<unsigned>(std::atol(v));
    } else if (const char* v = value_of(i, "--of")) {
      forward = false;
      flags.of = static_cast<unsigned>(std::atol(v));
    } else if (const char* v = value_of(i, "--emit-shard")) {
      forward = false;
      flags.emit_shard = v;
    } else if (const char* v = value_of(i, "--sha1-impl")) {
      if (const auto parsed = crypto::parse_sha1_impl(v)) {
        const crypto::Sha1Impl effective = crypto::set_sha1_impl(*parsed);
        flags.sha1_impl = effective;
        if (effective != *parsed)
          std::fprintf(stderr,
                       "# --sha1-impl %s is not supported by this host/build; "
                       "using %s\n",
                       v, crypto::sha1_impl_name(effective));
      } else {
        std::fprintf(stderr,
                     "# --sha1-impl '%s' is not one of scalar|ssse3|avx2; "
                     "using %s\n",
                     v, crypto::sha1_impl_name(crypto::sha1_impl()));
      }
    } else if (const char* v = value_of(i, "--chain-memo")) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(v, &end, 10);
      if (errno != 0 || end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr,
                     "# --chain-memo '%s' is not a non-negative integer; "
                     "keeping %llu\n",
                     v,
                     static_cast<unsigned long long>(
                         zone::Nsec3ChainMemo::default_capacity()));
      } else {
        flags.chain_memo = static_cast<std::size_t>(parsed);
        zone::Nsec3ChainMemo::set_default_capacity(*flags.chain_memo);
      }
    } else if (const char* v = value_of(i, "--aggressive-nsec")) {
      if (const auto parsed = parse_on_off(v)) {
        flags.aggressive_nsec = *parsed;
      } else {
        std::fprintf(stderr, "# unknown --aggressive-nsec '%s' (on|off)\n", v);
      }
    } else if (const char* v = value_of(i, "--neg-cache-cap")) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(v, &end, 10);
      if (errno != 0 || end == v || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr,
                     "# --neg-cache-cap '%s' is not a positive integer; "
                     "keeping %llu\n",
                     v, static_cast<unsigned long long>(flags.neg_cache_cap));
      } else {
        flags.neg_cache_cap = static_cast<std::size_t>(parsed);
      }
    } else if (const char* v = value_of(i, "--failure-cache-ttl")) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(v, &end, 10);
      if (errno != 0 || end == v || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr,
                     "# --failure-cache-ttl '%s' is not a positive integer "
                     "(milliseconds); keeping %lld\n",
                     v, static_cast<long long>(flags.failure_cache_ttl_ms));
      } else {
        flags.failure_cache_ttl_ms = parsed;
      }
    } else if (std::strcmp(arg, "--merge-shards") == 0) {
      forward = false;
      for (++i; i < argc; ++i) flags.merge_shards.push_back(argv[i]);
    }
    if (forward)
      for (int k = first; k <= i && k < argc; ++k)
        flags.worker_args.push_back(argv[k]);
  }
  if (jobs < 0) jobs = 1;
  flags.jobs =
      jobs == 0 ? scanner::default_jobs() : static_cast<unsigned>(jobs);
  if (procs < 0) procs = 1;
  flags.procs =
      procs == 0 ? scanner::default_jobs() : static_cast<unsigned>(procs);
  if (flags.worker_mode() && (flags.of == 0 || flags.shard >= flags.of)) {
    std::fprintf(stderr, "--emit-shard requires --shard S --of K with S < K "
                         "(got S=%u, K=%u)\n",
                 flags.shard, flags.of);
    std::exit(2);
  }
  return flags;
}

/// Worker-thread count only (the historical entry point).
inline unsigned parse_jobs(int argc, char** argv) {
  return parse_flags(argc, argv).jobs;
}

/// Writes the merged trace when --trace/ZH_TRACE asked for one, and prints
/// a `#` summary comment. A no-op (no output at all) otherwise, so
/// zero-config bench output stays byte-identical.
inline void write_trace(const BenchFlags& flags,
                        const trace::Collector& collector) {
  if (!flags.trace_enabled()) return;
  const bool ok = collector.write_file(flags.trace_path, flags.trace_format);
  std::printf("# trace: %llu events (%llu emitted, %llu ring-dropped) from "
              "%zu shard(s) %s %s (%s)\n",
              static_cast<unsigned long long>(collector.event_count()),
              static_cast<unsigned long long>(collector.events_emitted()),
              static_cast<unsigned long long>(collector.events_lost()),
              collector.shard_count(),
              ok ? "written to" : "FAILED writing",
              flags.trace_path.c_str(), trace::format_name(flags.trace_format));
  for (const auto& [name, value] : collector.metrics())
    std::printf("# trace metric %s = %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
}

/// Prints the per-stage latency breakdown (p50/p99 µs per stage) when
/// tracing was requested. Gated on the trace flag so zero-config output is
/// untouched; stage Ecdfs are jobs-invariant (per-item deltas).
inline void print_stage_breakdown(const BenchFlags& flags,
                                  const analysis::Ecdf& resolve,
                                  const analysis::Ecdf& recurse,
                                  const analysis::Ecdf& validate,
                                  const analysis::Ecdf& queue_wait) {
  if (!flags.trace_enabled()) return;
  const auto row = [](const char* stage, const analysis::Ecdf& ecdf) {
    std::printf("# stage %-10s p50=%8lldus  p99=%8lldus  max=%8lldus\n", stage,
                static_cast<long long>(ecdf.percentile(0.5)),
                static_cast<long long>(ecdf.percentile(0.99)),
                static_cast<long long>(ecdf.max()));
  };
  row("resolve", resolve);
  row("recurse", recurse);
  row("validate", validate);
  row("queue-wait", queue_wait);
}

/// Prints the RFC 8198/9520 campaign counters. Gated on --aggressive-nsec
/// so synth-off output stays byte-identical to the goldens; the counters
/// themselves are jobs/procs/engine-invariant (per-shard metric deltas).
inline void print_aggressive_counters(const BenchFlags& flags,
                                      std::uint64_t neg_synth_hits,
                                      std::uint64_t failure_cache_hits) {
  if (!flags.aggressive()) return;
  std::printf("# aggressive-nsec: %llu answers synthesized, %llu "
              "failure-cache hits (cap %llu, failure TTL %lldms)\n",
              static_cast<unsigned long long>(neg_synth_hits),
              static_cast<unsigned long long>(failure_cache_hits),
              static_cast<unsigned long long>(flags.neg_cache_cap),
              static_cast<long long>(flags.failure_cache_ttl_ms));
}

/// A fully built world: internet + population spec + probe zones + the
/// measurement resolver (Cloudflare profile, as the paper used 1.1.1.1).
struct World {
  std::unique_ptr<workload::EcosystemSpec> spec;
  std::unique_ptr<testbed::Internet> internet;
  std::vector<testbed::ProbeZone> probe_zones;
  std::unique_ptr<resolver::RecursiveResolver> scan_resolver;
  double scale = 0.001;
};

inline World build_world(bool with_domains = true) {
  World world;
  world.scale = env_double("ZH_SCALE", 0.001);
  const std::uint64_t seed = env_u64("ZH_SEED", 42);

  const auto start = std::chrono::steady_clock::now();
  world.spec = std::make_unique<workload::EcosystemSpec>(
      workload::EcosystemSpec::Options{.scale = world.scale, .seed = seed});
  world.internet = std::make_unique<testbed::Internet>();
  world.probe_zones = testbed::add_probe_infrastructure(*world.internet);
  if (with_domains) {
    workload::install_ecosystem(*world.internet, *world.spec);
  }
  world.internet->build();
  world.scan_resolver = world.internet->make_resolver(
      resolver::ResolverProfile::cloudflare(),
      simnet::IpAddress::v4(1, 1, 1, 1));
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "# world: scale=%g (%zu domains, %zu TLDs, %zu operators) built in "
      "%.1fs\n",
      world.scale, with_domains ? world.spec->domain_count() : 0,
      world.spec->tlds().size(), world.spec->operators().size(), secs);
  return world;
}

}  // namespace zh::bench
