// Shared setup for the reproduction benches: builds the simulated Internet
// + synthetic population at a configurable scale.
//
// Environment knobs:
//   ZH_SCALE           population scale (default 0.001 = 1:1000 of 302 M)
//   ZH_RESOLVER_SCALE  resolver-population scale (default 0.01 = 1:100)
//   ZH_SEED            generator seed (default 42)
//   ZH_JOBS            worker threads (default 1; also --jobs N / --jobs=N)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "scanner/campaign.hpp"
#include "scanner/parallel.hpp"
#include "testbed/internet.hpp"
#include "workload/install.hpp"
#include "workload/resolver_population.hpp"

namespace zh::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value ? static_cast<std::uint64_t>(std::atoll(value)) : fallback;
}

/// Worker-thread count: `--jobs N`, `--jobs=N` or `-jN` on the command
/// line, else ZH_JOBS, else 1. `--jobs 0` means "all hardware threads".
inline unsigned parse_jobs(int argc, char** argv) {
  long jobs = static_cast<long>(env_u64("ZH_JOBS", 1));
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atol(argv[++i]);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      jobs = std::atol(arg + 7);
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      jobs = std::atol(arg + 2);
    }
  }
  if (jobs < 0) jobs = 1;
  return jobs == 0 ? scanner::default_jobs() : static_cast<unsigned>(jobs);
}

/// A fully built world: internet + population spec + probe zones + the
/// measurement resolver (Cloudflare profile, as the paper used 1.1.1.1).
struct World {
  std::unique_ptr<workload::EcosystemSpec> spec;
  std::unique_ptr<testbed::Internet> internet;
  std::vector<testbed::ProbeZone> probe_zones;
  std::unique_ptr<resolver::RecursiveResolver> scan_resolver;
  double scale = 0.001;
};

inline World build_world(bool with_domains = true) {
  World world;
  world.scale = env_double("ZH_SCALE", 0.001);
  const std::uint64_t seed = env_u64("ZH_SEED", 42);

  const auto start = std::chrono::steady_clock::now();
  world.spec = std::make_unique<workload::EcosystemSpec>(
      workload::EcosystemSpec::Options{.scale = world.scale, .seed = seed});
  world.internet = std::make_unique<testbed::Internet>();
  world.probe_zones = testbed::add_probe_infrastructure(*world.internet);
  if (with_domains) {
    workload::install_ecosystem(*world.internet, *world.spec);
  }
  world.internet->build();
  world.scan_resolver = world.internet->make_resolver(
      resolver::ResolverProfile::cloudflare(),
      simnet::IpAddress::v4(1, 1, 1, 1));
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "# world: scale=%g (%zu domains, %zu TLDs, %zu operators) built in "
      "%.1fs\n",
      world.scale, with_domains ? world.spec->domain_count() : 0,
      world.spec->tlds().size(), world.spec->operators().size(), secs);
  return world;
}

}  // namespace zh::bench
