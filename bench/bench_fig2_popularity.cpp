// Figure 2 — CDF of popularity ranks of NSEC3-enabled domains in the
// Tranco-like 1 M list, plus the popular-domain compliance numbers (§5.1).
//
// The list is scanned through the wire (the ranks come from the generator,
// the NSEC3 facts from the measurement pipeline, exactly as the paper
// intersects Tranco with its scan results).
#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "workload/popularity.hpp"

int main() {
  using namespace zh;
  auto world = bench::build_world();

  const std::size_t list_size = static_cast<std::size_t>(
      bench::env_double("ZH_POPULARITY_SIZE", 10000));
  workload::PopularityList list(*world.spec, {.size = list_size, .seed = 99});
  std::printf("# popularity list: %zu entries (paper: 1 M Tranco)\n",
              list.size());

  scanner::DomainScanner scanner(world.internet->network(),
                                 simnet::IpAddress::v4(203, 0, 113, 240),
                                 world.scan_resolver->address());

  analysis::Ecdf nsec3_ranks;       // Fig. 2: ranks of NSEC3-enabled
  analysis::Ecdf zero_iter_ranks;   // "no add. it." curve
  analysis::Ecdf no_salt_ranks;     // "without salt" curve
  std::uint64_t dnssec = 0, nsec3 = 0, zero = 0, nosalt = 0, both = 0;

  for (const auto& entry : list.entries()) {
    const auto profile = world.spec->domain(entry.domain_index);
    const auto result = scanner.scan(profile.apex);
    if (result.dnskey) ++dnssec;
    if (result.classification !=
        scanner::DomainScanResult::Class::kNsec3Enabled)
      continue;
    ++nsec3;
    nsec3_ranks.add(static_cast<std::int64_t>(entry.rank));
    if (result.iterations_compliant()) {
      ++zero;
      zero_iter_ranks.add(static_cast<std::int64_t>(entry.rank));
    }
    if (result.salt_compliant()) {
      ++nosalt;
      no_salt_ranks.add(static_cast<std::int64_t>(entry.rank));
    }
    if (result.rfc9276_compliant()) ++both;
  }

  analysis::print_ascii_cdf(
      "Figure 2: CDF of popularity ranks — NSEC3-enabled with 0 additional "
      "iterations",
      zero_iter_ranks, static_cast<std::int64_t>(list.size()));
  analysis::print_ascii_cdf(
      "Figure 2: CDF of popularity ranks — NSEC3-enabled without salt",
      no_salt_ranks, static_cast<std::int64_t>(list.size()));

  // Uniformity check: quartile shares of each curve should be ~25 % each.
  const auto quartiles = [&](const analysis::Ecdf& ecdf) {
    std::string out;
    for (int q = 1; q <= 4; ++q) {
      const double hi = ecdf.fraction_at_most(
          static_cast<std::int64_t>(list.size() * q / 4));
      const double lo = ecdf.fraction_at_most(
          static_cast<std::int64_t>(list.size() * (q - 1) / 4));
      out += analysis::format_percent(hi - lo, 0) + " ";
    }
    return out;
  };
  std::printf("\nrank-quartile mass (uniform ⇒ ~25 %% each):\n");
  std::printf("  no add. it. : %s\n", quartiles(zero_iter_ranks).c_str());
  std::printf("  without salt: %s\n", quartiles(no_salt_ranks).c_str());

  const double total = static_cast<double>(list.size());
  analysis::print_comparison(
      "Popular-domain compliance (paper vs measured)",
      {
          {"DNSSEC-enabled in list", "66.6 K of 1 M (6.7 %)",
           analysis::format_count(dnssec) + " (" +
               analysis::format_percent(dnssec / total) + ")"},
          {"NSEC3-enabled of DNSSEC", "27.2 K (40.8 %)",
           analysis::format_count(nsec3) + " (" +
               analysis::format_percent(static_cast<double>(nsec3) / dnssec) +
               ")"},
          {"zero additional iterations", "6.2 K (22.8 %)",
           analysis::format_count(zero) + " (" +
               analysis::format_percent(static_cast<double>(zero) / nsec3) +
               ")"},
          {"no salt", "6.4 K (23.6 %)",
           analysis::format_count(nosalt) + " (" +
               analysis::format_percent(static_cast<double>(nosalt) / nsec3) +
               ")"},
          {"compliant with both", "3.5 K (12.7 %)",
           analysis::format_count(both) + " (" +
               analysis::format_percent(static_cast<double>(both) / nsec3) +
               ")"},
      });
  return 0;
}
