// Ablation: RFC 9276 Items 7 & 12 — what breaks without them.
//
// Sweeps the on-path downgrade attack (forged NSEC3 iteration counts)
// across resolver policies: Item 7-compliant resolvers fail closed under
// attack; violators silently lose DNSSEC. Then quantifies the Item 12
// window: a resolver whose insecure limit is below its SERVFAIL limit has
// a band of iteration counts where a *legitimate-looking* high-iteration
// forgery downgrades it without any failure signal.
#include <cstdio>

#include "bench_common.hpp"
#include "scanner/downgrade.hpp"

int main() {
  using namespace zh;
  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});
  testbed::DomainConfig victim_zone;
  victim_zone.apex = dns::Name::must_parse("victim.com");
  victim_zone.nsec3 = {.iterations = 0, .salt = {}, .opt_out = false};
  internet.add_domain(victim_zone);
  internet.build();

  struct Row {
    const char* name;
    resolver::ResolverProfile profile;
  };
  const Row rows[] = {
      {"item7-compliant (bind9@150)",
       resolver::ResolverProfile::bind9_2021()},
      {"item7-violator", resolver::ResolverProfile::item7_violator()},
      {"item12-gap (100/150)", resolver::ResolverProfile::item12_gap()},
      {"strict (cloudflare)", resolver::ResolverProfile::cloudflare()},
      {"permissive", resolver::ResolverProfile::permissive()},
  };

  std::printf("Downgrade attack outcome by policy (forged NSEC3 iteration "
              "counts on victim.com)\n\n");
  std::printf("%-30s %-14s %-22s %s\n", "resolver policy", "no attack",
              "forge iterations=120", "forge iterations=2000");
  std::printf("%s\n", std::string(92, '-').c_str());

  std::uint8_t addr = 10;
  int token = 0;
  for (const auto& row : rows) {
    auto r = internet.make_resolver(row.profile,
                                    simnet::IpAddress::v4(203, 0, 113, addr++));
    const auto outcome = [&](std::optional<std::uint16_t> forged) {
      if (forged) {
        internet.network().set_tamper(scanner::make_downgrade_attacker(
            dns::Name::must_parse("victim.com"), *forged));
      }
      const auto response = r->resolve(
          dns::Name::must_parse("q" + std::to_string(token++) +
                                ".victim.com"),
          dns::RrType::kA);
      internet.network().set_tamper(nullptr);
      std::string out = to_string(response.header.rcode);
      if (response.header.ad) out += "+AD";
      if (response.header.rcode == dns::Rcode::kNxDomain &&
          !response.header.ad)
        out += " (DOWNGRADED)";
      return out;
    };
    const std::string clean = outcome(std::nullopt);
    const std::string mid = outcome(120);
    const std::string high = outcome(2000);
    std::printf("%-30s %-14s %-22s %s\n", row.name, clean.c_str(),
                mid.c_str(), high.c_str());
  }

  std::printf(
      "\nReading the table:\n"
      "  * Item 7 compliance turns both forgeries into SERVFAIL (fail "
      "closed, DoS at worst).\n"
      "  * The Item 7 violator accepts the forged count and loses DNSSEC "
      "(DOWNGRADED).\n"
      "  * The Item 12 gap (insecure@100 < servfail@150) is the band where "
      "iterations=120\n"
      "    would downgrade even a resolver that otherwise fails closed at "
      "2000 — if it also\n"
      "    skipped Item 7. With Item 7 enforced the gap is theoretical, "
      "which is why the RFC\n"
      "    pairs the two: same thresholds (Item 12) AND verify first "
      "(Item 7).\n");
  return 0;
}
