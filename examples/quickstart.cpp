// Quickstart: build a signed zone, serve it, resolve and validate against
// it — the whole library in ~100 lines.
//
//   $ ./quickstart
//
// Walks through: (1) authoring + NSEC3-signing a zone, (2) hosting it on a
// simulated authoritative server, (3) validating resolution including an
// NXDOMAIN with its closest-encloser proof, and (4) what happens when the
// zone ignores RFC 9276 and a resolver enforces an iteration limit.
#include <cstdio>

#include "testbed/internet.hpp"

using namespace zh;

int main() {
  // 1. A simulated Internet: root + .com, with example.com signed using
  //    RFC 9276-compliant parameters (0 iterations, no salt)...
  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});

  testbed::DomainConfig good;
  good.apex = dns::Name::must_parse("example.com");
  good.nsec3 = {.iterations = 0, .salt = {}, .opt_out = false};
  internet.add_domain(good);

  //    ...and bad-idea.com signed with 200 additional iterations — the
  //    configuration the paper shows 87.8 % of NSEC3 domains approximate.
  testbed::DomainConfig bad;
  bad.apex = dns::Name::must_parse("bad-idea.com");
  bad.nsec3 = {.iterations = 200, .salt = {0xaa, 0xbb}, .opt_out = false};
  internet.add_domain(bad);

  internet.build();

  // 2. Peek at the signed zone: the NSEC3 chain is part of the zone object.
  const auto zone = internet.zone(good.apex);
  std::printf("example.com zone has %zu records; NSEC3 chain length %zu\n",
              zone->record_count(), zone->nsec3_entries().size());
  const auto param = zone->nsec3param();
  std::printf("NSEC3PARAM: algorithm=%u iterations=%u salt=%zuB  "
              "(RFC 9276 compliant: %s)\n",
              param->hash_algorithm, param->iterations, param->salt.size(),
              zone->nsec3_params_used()->rfc9276_compliant() ? "yes" : "no");

  // 3. A validating resolver (BIND 9.16-era profile: insecure above 150).
  auto resolver = internet.make_resolver(
      resolver::ResolverProfile::bind9_2021(),
      simnet::IpAddress::v4(203, 0, 113, 1));

  const auto show = [](const char* what, const dns::Message& response) {
    std::printf("%-46s -> %s\n", what, response.summary().c_str());
  };

  show("A www.example.com (positive, validated)",
       resolver->resolve(dns::Name::must_parse("www.example.com"),
                         dns::RrType::kA));
  show("A nope.example.com (NXDOMAIN, proof validated)",
       resolver->resolve(dns::Name::must_parse("nope.example.com"),
                         dns::RrType::kA));
  std::printf("  (the AD flag above means the NSEC3 closest-encloser proof "
              "verified)\n");

  // 4. The same queries against the 200-iteration zone: the resolver's
  //    RFC 9276 Item 6 limit downgrades the answer to insecure.
  show("A nope.bad-idea.com (200 iterations > limit 150)",
       resolver->resolve(dns::Name::must_parse("nope.bad-idea.com"),
                         dns::RrType::kA));
  std::printf("  (NXDOMAIN without AD: the resolver refused to spend "
              "201 hashes per candidate name)\n");

  // 5. A strict resolver (Cloudflare profile) SERVFAILs instead (Item 8) —
  //    for zones like this, 18.4 %% of validators made them unreachable.
  auto strict = internet.make_resolver(
      resolver::ResolverProfile::cloudflare(),
      simnet::IpAddress::v4(203, 0, 113, 2));
  show("same query via a SERVFAIL-at-150 resolver",
       strict->resolve(dns::Name::must_parse("nope2.bad-idea.com"),
                       dns::RrType::kA));
  return 0;
}
