// Example: why NSEC3 exists, and why its iterations are "pointless effort".
//
//   $ ./zone_walk
//
// Part 1 walks an NSEC zone — full enumeration in one query per name.
// Part 2 attacks the same layout behind NSEC3: harvest the hash chain,
// then crack it offline with a 30-word dictionary. The guessable names
// fall immediately; only genuinely random labels stay hidden — at any
// iteration count. That asymmetry is the paper's §2.3 rationale for
// RFC 9276's "zero additional iterations".
#include <cstdio>

#include "scanner/zone_walker.hpp"
#include "testbed/internet.hpp"

using namespace zh;

int main() {
  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});

  const char* labels[] = {"www", "mail", "api", "vpn", "intranet-zq7"};

  testbed::DomainConfig nsec_zone;
  nsec_zone.apex = dns::Name::must_parse("nsec-corp.com");
  nsec_zone.denial = zone::DenialMode::kNsec;
  nsec_zone.standard_records = false;
  for (const char* label : labels)
    nsec_zone.extra_records.push_back(
        dns::make_a(*nsec_zone.apex.prepended(label), 300, 192, 0, 2, 1));
  internet.add_domain(nsec_zone);

  testbed::DomainConfig nsec3_zone;
  nsec3_zone.apex = dns::Name::must_parse("nsec3-corp.com");
  nsec3_zone.nsec3 = {.iterations = 10, .salt = {0x13, 0x37},
                      .opt_out = false};
  nsec3_zone.standard_records = false;
  for (const char* label : labels)
    nsec3_zone.extra_records.push_back(
        dns::make_a(*nsec3_zone.apex.prepended(label), 300, 192, 0, 2, 2));
  internet.add_domain(nsec3_zone);

  internet.build();
  auto resolver = internet.make_resolver(
      resolver::ResolverProfile::non_validating(),
      simnet::IpAddress::v4(203, 0, 113, 1));

  // --- Part 1: NSEC zone walking ---
  std::printf("== NSEC zone walking: nsec-corp.com ==\n");
  scanner::NsecWalker walker(internet.network(),
                             simnet::IpAddress::v4(203, 0, 113, 2),
                             resolver->address());
  const auto walk = walker.walk(nsec_zone.apex);
  std::printf("enumerated %zu names with %llu queries (complete: %s):\n",
              walk.names.size(),
              static_cast<unsigned long long>(walk.queries),
              walk.complete ? "yes" : "no");
  for (const auto& name : walk.names)
    std::printf("  %s\n", name.to_string().c_str());

  // --- Part 2: NSEC3 dictionary attack ---
  std::printf("\n== NSEC3 dictionary attack: nsec3-corp.com "
              "(10 iterations, salted) ==\n");
  scanner::Nsec3DictionaryAttack attack(internet.network(),
                                        simnet::IpAddress::v4(203, 0, 113, 3),
                                        resolver->address());
  const auto result = attack.run(
      nsec3_zone.apex, scanner::Nsec3DictionaryAttack::default_dictionary());
  std::printf("harvested %zu chain hashes with %llu online queries\n",
              result.chain_hashes,
              static_cast<unsigned long long>(result.online_queries));
  std::printf("offline: %llu guesses hashed (%llu SHA-1 blocks at %u "
              "iterations)\n",
              static_cast<unsigned long long>(result.offline_hashes),
              static_cast<unsigned long long>(result.offline_sha1_blocks),
              result.iterations);
  std::printf("cracked %zu names:\n", result.cracked.size());
  for (const auto& cracked : result.cracked)
    std::printf("  %s\n", cracked.name.to_string().c_str());
  std::printf("\n'intranet-zq7.nsec3-corp.com' stayed hidden — but every "
              "guessable name fell,\nand the 10 extra iterations made the "
              "attack only 11x slower while taxing every\nvalidator on the "
              "Internet identically. Hence RFC 9276: zeros are heroes.\n");
  return 0;
}
