// Example: a miniature §4.2 resolver survey.
//
//   $ ./resolver_survey
//
// Stands up the rfc9276-in-the-wild.com probe infrastructure (valid,
// expired, it-1…it-500, it-2501-expired), instantiates one resolver per
// vendor profile, probes each, and prints the inferred behaviour — the
// per-resolver view behind Figure 3.
#include <cstdio>

#include "scanner/resolver_prober.hpp"
#include "testbed/internet.hpp"

using namespace zh;

int main() {
  testbed::Internet internet;
  const auto probe_zones = testbed::add_probe_infrastructure(internet);
  internet.build();

  using resolver::ResolverProfile;
  const ResolverProfile profiles[] = {
      ResolverProfile::bind9_2021(),   ResolverProfile::bind9_2023(),
      ResolverProfile::unbound(),      ResolverProfile::knot_2023(),
      ResolverProfile::google_public_dns(), ResolverProfile::cloudflare(),
      ResolverProfile::quad9(),        ResolverProfile::opendns(),
      ResolverProfile::technitium(),   ResolverProfile::strict_zero(),
      ResolverProfile::permissive(),   ResolverProfile::item7_violator(),
      ResolverProfile::item12_gap(),   ResolverProfile::non_validating(),
  };

  scanner::ResolverProber prober(internet.network(),
                                 simnet::IpAddress::v4(203, 0, 113, 100),
                                 probe_zones);

  std::printf("%-22s %-10s %-14s %-14s %-8s %-8s %s\n", "profile",
              "validator", "insecure-limit", "servfail-limit", "item7",
              "item12", "EDE on limit");
  std::printf("%s\n", std::string(96, '-').c_str());

  std::uint8_t index = 10;
  int token = 0;
  for (const auto& profile : profiles) {
    auto r = internet.make_resolver(profile,
                                    simnet::IpAddress::v4(203, 0, 113, index++));
    const auto result =
        prober.probe(r->address(), "survey-" + std::to_string(token++));

    const auto limit_text = [](const std::optional<std::uint16_t>& limit) {
      return limit ? std::to_string(*limit) : std::string("-");
    };
    std::string ede = "-";
    if (result.limit_ede)
      ede = std::to_string(static_cast<int>(*result.limit_ede)) + " (" +
            dns::to_string(*result.limit_ede) + ")";
    std::printf("%-22s %-10s %-14s %-14s %-8s %-8s %s\n",
                profile.name.c_str(), result.validator ? "yes" : "no",
                limit_text(result.insecure_limit).c_str(),
                limit_text(result.servfail_limit).c_str(),
                result.item7_violation ? "VIOLATES" : "ok",
                result.item12_gap ? "GAP" : "ok", ede.c_str());
  }

  std::printf(
      "\nReading the table: 'insecure-limit N' = NXDOMAIN loses the AD bit "
      "above N additional\niterations (RFC 9276 Item 6); 'servfail-limit N' "
      "= SERVFAIL above N (Item 8); item7\nVIOLATES = accepted an expired "
      "NSEC3 RRSIG when downgrading (it-2501-expired probe).\n");
  return 0;
}
