// Example: a miniature §4.1 measurement campaign.
//
//   $ ./scan_campaign [domain_count] [--jobs N]
//
// Builds a scaled synthetic registration ecosystem (Table 2 operators, TLD
// census, calibrated parameter mixes), then runs the zdns-style pipeline —
// DNSKEY → NSEC3PARAM/NS → negative probe — through a simulated Cloudflare
// resolver, and prints per-domain scan lines plus the aggregate compliance
// picture. This is bench_fig1/bench_s51 in miniature, with verbose output.
// `--jobs N` shards the aggregate campaign over N worker threads; the
// aggregate numbers are identical for every N.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/stats.hpp"
#include "scanner/campaign.hpp"
#include "scanner/parallel.hpp"
#include "workload/install.hpp"

using namespace zh;

int main(int argc, char** argv) {
  std::size_t show = 25;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::atoi(argv[i] + 7));
    } else {
      show = static_cast<std::size_t>(std::atoi(argv[i]));
    }
  }
  if (jobs == 0) jobs = scanner::default_jobs();

  workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  testbed::Internet internet;
  workload::install_ecosystem(internet, spec);
  internet.build();

  auto resolver = internet.make_resolver(
      resolver::ResolverProfile::cloudflare(),
      simnet::IpAddress::v4(1, 1, 1, 1));
  scanner::DomainScanner scanner(internet.network(),
                                 simnet::IpAddress::v4(203, 0, 113, 100),
                                 resolver->address());

  std::printf("%-18s %-12s %-6s %-5s %-8s %s\n", "domain", "class", "iter",
              "salt", "opt-out", "operator (from NS)");
  std::printf("%s\n", std::string(76, '-').c_str());

  std::size_t printed = 0;
  for (std::size_t index = 220;  // skip the planted long-tail specials
       index < spec.domain_count() && printed < show; ++index) {
    const auto profile = spec.domain(index);
    const auto result = scanner.scan(profile.apex);

    const char* klass = "?";
    switch (result.classification) {
      case scanner::DomainScanResult::Class::kUnresponsive:
        klass = "dead";
        break;
      case scanner::DomainScanResult::Class::kNoDnssec:
        klass = "no-dnssec";
        break;
      case scanner::DomainScanResult::Class::kDnssecNoNsec3:
        klass = "nsec";
        break;
      case scanner::DomainScanResult::Class::kNsec3Enabled:
        klass = "nsec3";
        break;
      case scanner::DomainScanResult::Class::kExcluded:
        klass = "excluded";
        break;
    }
    std::string op = "-";
    if (!result.ns_names.empty())
      op = result.ns_names.front().ancestor_with_labels(2).to_string();
    if (result.nsec3) {
      std::printf("%-18s %-12s %-6u %-5zu %-8s %s\n",
                  profile.apex.to_string().c_str(), klass,
                  result.nsec3->iterations, result.nsec3->salt.size(),
                  result.nsec3->opt_out ? "yes" : "no", op.c_str());
    } else {
      std::printf("%-18s %-12s %-6s %-5s %-8s %s\n",
                  profile.apex.to_string().c_str(), klass, "-", "-", "-",
                  op.c_str());
    }
    ++printed;
  }

  // Aggregate a quick campaign over the first 2000 domains, sharded over
  // `jobs` worker threads (each worker rebuilds this world privately).
  const scanner::ParallelCampaignResult campaign =
      scanner::run_domain_campaign_parallel(
          spec, scanner::default_world_factory(spec),
          {.jobs = jobs, .limit = 2000, .base_seed = spec.options().seed});
  const auto& stats = campaign.stats;
  std::printf("\ncampaign over %llu domains (--jobs %u): %llu DNSSEC, "
              "%llu NSEC3; RFC 9276-compliant (Items 2+3): %s of NSEC3\n",
              static_cast<unsigned long long>(stats.scanned), campaign.jobs,
              static_cast<unsigned long long>(stats.dnssec),
              static_cast<unsigned long long>(stats.nsec3),
              analysis::format_percent(
                  static_cast<double>(stats.fully_compliant) /
                  static_cast<double>(stats.nsec3))
                  .c_str());
  std::printf("total DNS queries issued: %llu (4 per domain, as in §4.1)\n",
              static_cast<unsigned long long>(campaign.queries_issued));
  return 0;
}
