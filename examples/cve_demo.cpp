// Example: CVE-2023-50868 demonstrated end to end.
//
//   $ ./cve_demo
//
// A malicious zone signs itself with the maximum iteration count a
// validator might still process, then a burst of NXDOMAIN queries forces
// the resolver to perform closest-encloser proofs — each hashing several
// candidate names at (iterations+1) SHA-1 applications. The demo compares
// a vulnerable (no-limit) resolver with a CVE-patched one and prints the
// amplification, reproducing the attack the paper's §1/§3 cites from
// Gruza et al. (WOOT'24).
#include <cstdio>

#include "testbed/internet.hpp"

using namespace zh;

int main() {
  testbed::Internet internet;
  internet.add_tld("com", testbed::TldConfig{});

  // The attacker's zone: deep names + high iterations maximise per-query
  // validation work. 2500 is the largest RFC 5155 ceiling any validator
  // accepts.
  testbed::DomainConfig attack;
  attack.apex = dns::Name::must_parse("attacker.com");
  attack.nsec3 = {.iterations = 2500, .salt = std::vector<std::uint8_t>(44, 0xff),
                  .opt_out = false};
  internet.add_domain(attack);

  // A benign, RFC 9276-compliant zone for the baseline.
  testbed::DomainConfig benign;
  benign.apex = dns::Name::must_parse("benign.com");
  benign.nsec3 = {.iterations = 0, .salt = {}, .opt_out = false};
  internet.add_domain(benign);

  internet.build();

  auto vulnerable = internet.make_resolver(
      resolver::ResolverProfile::permissive(),
      simnet::IpAddress::v4(203, 0, 113, 1));
  auto patched = internet.make_resolver(
      resolver::ResolverProfile::bind9_2023(),  // CVE patch: limit 50
      simnet::IpAddress::v4(203, 0, 113, 2));

  const auto attack_query = [&](resolver::RecursiveResolver& r, int i) {
    // Deep labels multiply the closest-encloser candidates to hash.
    const dns::Name qname = dns::Name::must_parse(
        "a.b.c.d.e.f.g.h" + std::to_string(i) + ".attacker.com");
    return r.resolve(qname, dns::RrType::kA);
  };

  // Baseline: one benign NXDOMAIN.
  (void)vulnerable->resolve(dns::Name::must_parse("nope.benign.com"),
                            dns::RrType::kA);
  const std::uint64_t baseline = vulnerable->stats().last_query_sha1_blocks;
  std::printf("baseline (benign.com, 0 iterations): %llu SHA-1 blocks per "
              "NXDOMAIN validation\n",
              static_cast<unsigned long long>(baseline));

  // The attack burst.
  std::uint64_t vulnerable_total = 0, patched_total = 0;
  constexpr int kQueries = 10;
  for (int i = 0; i < kQueries; ++i) {
    const auto response = attack_query(*vulnerable, i);
    vulnerable_total += vulnerable->stats().last_query_sha1_blocks;
    if (i == 0)
      std::printf("vulnerable resolver answer: %s\n",
                  response.summary().c_str());
  }
  for (int i = 0; i < kQueries; ++i) {
    const auto response = attack_query(*patched, i);
    patched_total += patched->stats().last_query_sha1_blocks;
    if (i == 0)
      std::printf("patched resolver answer:    %s\n",
                  response.summary().c_str());
  }

  const double per_query_vulnerable =
      static_cast<double>(vulnerable_total) / kQueries;
  const double per_query_patched =
      static_cast<double>(patched_total) / kQueries;
  std::printf("\n%d attack queries (2500 iterations, 44-byte salt, deep "
              "names):\n", kQueries);
  std::printf("  vulnerable (no limit) : %10.0f SHA-1 blocks/query  "
              "(%.0fx over baseline)\n",
              per_query_vulnerable, per_query_vulnerable /
                  static_cast<double>(baseline ? baseline : 1));
  std::printf("  patched (limit 50)    : %10.0f SHA-1 blocks/query  "
              "(%.1fx over baseline)\n",
              per_query_patched, per_query_patched /
                  static_cast<double>(baseline ? baseline : 1));
  std::printf(
      "\nGruza et al. measured up to 72x CPU-instruction amplification on "
      "real resolvers;\nthe patched resolver validates the NSEC3 RRSIG "
      "(Item 7) and then refuses the hash work.\n");
  return 0;
}
