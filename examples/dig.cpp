// Example: a dig-style CLI against the simulated Internet.
//
//   $ ./dig <qname> [qtype] [profile] [+cd]
//   $ ./dig x.nx.it-200.rfc9276-in-the-wild.com A cloudflare
//   $ ./dig it-17.rfc9276-in-the-wild.com NSEC3PARAM
//   $ ./dig d300.com DNSKEY google +cd
//
// Builds the probe infrastructure plus a small synthetic population, then
// issues the query through the chosen resolver profile and pretty-prints
// the response dig-style (flags, EDE, answer/authority sections).
#include <cstdio>
#include <cstring>
#include <string>

#include "workload/install.hpp"

using namespace zh;

namespace {

dns::RrType parse_type(const std::string& text) {
  if (text == "A") return dns::RrType::kA;
  if (text == "AAAA") return dns::RrType::kAaaa;
  if (text == "NS") return dns::RrType::kNs;
  if (text == "SOA") return dns::RrType::kSoa;
  if (text == "TXT") return dns::RrType::kTxt;
  if (text == "MX") return dns::RrType::kMx;
  if (text == "CNAME") return dns::RrType::kCname;
  if (text == "DNSKEY") return dns::RrType::kDnskey;
  if (text == "DS") return dns::RrType::kDs;
  if (text == "RRSIG") return dns::RrType::kRrsig;
  if (text == "NSEC") return dns::RrType::kNsec;
  if (text == "NSEC3") return dns::RrType::kNsec3;
  if (text == "NSEC3PARAM") return dns::RrType::kNsec3Param;
  return dns::RrType::kA;
}

resolver::ResolverProfile parse_profile(const std::string& text) {
  using P = resolver::ResolverProfile;
  if (text == "bind9" || text == "bind9-2021") return P::bind9_2021();
  if (text == "bind9-2023") return P::bind9_2023();
  if (text == "unbound") return P::unbound();
  if (text == "knot") return P::knot_2023();
  if (text == "google") return P::google_public_dns();
  if (text == "cloudflare") return P::cloudflare();
  if (text == "quad9") return P::quad9();
  if (text == "opendns") return P::opendns();
  if (text == "technitium") return P::technitium();
  if (text == "strict") return P::strict_zero();
  if (text == "permissive") return P::permissive();
  if (text == "plain") return P::non_validating();
  return P::bind9_2021();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <qname> [qtype] [profile] [+cd]\n"
                 "profiles: bind9 bind9-2023 unbound knot google cloudflare "
                 "quad9 opendns technitium strict permissive plain\n",
                 argv[0]);
    return 2;
  }
  const auto qname = dns::Name::parse(argv[1]);
  if (!qname) {
    std::fprintf(stderr, "invalid name: %s\n", argv[1]);
    return 2;
  }
  const dns::RrType qtype = parse_type(argc > 2 ? argv[2] : "A");
  const auto profile = parse_profile(argc > 3 ? argv[3] : "bind9");
  bool cd = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "+cd") == 0) cd = true;

  // A compact world: the probe zones plus a 1:50000 population.
  workload::EcosystemSpec spec({.scale = 0.00002, .seed = 42});
  testbed::Internet internet;
  testbed::add_probe_infrastructure(internet);
  workload::install_ecosystem(internet, spec);
  internet.build();

  auto resolver =
      internet.make_resolver(profile, simnet::IpAddress::v4(203, 0, 113, 1));

  dns::Message query = dns::Message::make_query(42, *qname, qtype,
                                                /*dnssec_ok=*/true);
  query.header.cd = cd;
  const dns::Message response =
      resolver->handle(query, simnet::IpAddress::v4(203, 0, 113, 2));

  std::printf(";; using profile %s%s\n", profile.name.c_str(),
              cd ? " (+cd)" : "");
  std::printf(";; ->>HEADER<<- rcode: %s, id: %u\n",
              dns::to_string(response.header.rcode).c_str(),
              response.header.id);
  std::string flags = "qr";
  if (response.header.aa) flags += " aa";
  if (response.header.rd) flags += " rd";
  if (response.header.ra) flags += " ra";
  if (response.header.ad) flags += " ad";
  if (response.header.cd) flags += " cd";
  std::printf(";; flags: %s; ANSWER: %zu, AUTHORITY: %zu\n", flags.c_str(),
              response.answers.size(), response.authorities.size());
  if (response.edns) {
    if (const auto ede = response.edns->ede()) {
      std::printf(";; EDE: %u (%s)%s%s\n",
                  static_cast<unsigned>(ede->info_code),
                  dns::to_string(ede->info_code).c_str(),
                  ede->extra_text.empty() ? "" : ": ",
                  ede->extra_text.c_str());
    }
  }
  if (!response.answers.empty()) {
    std::printf("\n;; ANSWER SECTION:\n");
    for (const auto& rr : response.answers)
      std::printf("%s\n", rr.to_string().c_str());
  }
  if (!response.authorities.empty()) {
    std::printf("\n;; AUTHORITY SECTION:\n");
    for (const auto& rr : response.authorities)
      std::printf("%s\n", rr.to_string().c_str());
  }
  std::printf("\n;; resolver spent %llu SHA-1 blocks validating this query\n",
              static_cast<unsigned long long>(
                  resolver->stats().last_query_sha1_blocks));
  return 0;
}
