file(REMOVE_RECURSE
  "CMakeFiles/test_property_codec.dir/test_property_codec.cpp.o"
  "CMakeFiles/test_property_codec.dir/test_property_codec.cpp.o.d"
  "test_property_codec"
  "test_property_codec.pdb"
  "test_property_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
