file(REMOVE_RECURSE
  "CMakeFiles/test_dns_dnssec.dir/test_dns_dnssec.cpp.o"
  "CMakeFiles/test_dns_dnssec.dir/test_dns_dnssec.cpp.o.d"
  "test_dns_dnssec"
  "test_dns_dnssec.pdb"
  "test_dns_dnssec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_dnssec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
