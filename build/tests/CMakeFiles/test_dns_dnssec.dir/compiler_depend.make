# Empty compiler generated dependencies file for test_dns_dnssec.
# This may be replaced when dependencies are built.
