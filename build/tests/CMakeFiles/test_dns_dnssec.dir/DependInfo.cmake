
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dns_dnssec.cpp" "tests/CMakeFiles/test_dns_dnssec.dir/test_dns_dnssec.cpp.o" "gcc" "tests/CMakeFiles/test_dns_dnssec.dir/test_dns_dnssec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/zh_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zh_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
