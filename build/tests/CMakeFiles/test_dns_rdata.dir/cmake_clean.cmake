file(REMOVE_RECURSE
  "CMakeFiles/test_dns_rdata.dir/test_dns_rdata.cpp.o"
  "CMakeFiles/test_dns_rdata.dir/test_dns_rdata.cpp.o.d"
  "test_dns_rdata"
  "test_dns_rdata.pdb"
  "test_dns_rdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_rdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
