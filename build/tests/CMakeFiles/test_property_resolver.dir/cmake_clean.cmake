file(REMOVE_RECURSE
  "CMakeFiles/test_property_resolver.dir/test_property_resolver.cpp.o"
  "CMakeFiles/test_property_resolver.dir/test_property_resolver.cpp.o.d"
  "test_property_resolver"
  "test_property_resolver.pdb"
  "test_property_resolver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
