# Empty dependencies file for test_property_resolver.
# This may be replaced when dependencies are built.
