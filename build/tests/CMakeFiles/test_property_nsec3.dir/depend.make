# Empty dependencies file for test_property_nsec3.
# This may be replaced when dependencies are built.
