file(REMOVE_RECURSE
  "CMakeFiles/test_zonefile.dir/test_zonefile.cpp.o"
  "CMakeFiles/test_zonefile.dir/test_zonefile.cpp.o.d"
  "test_zonefile"
  "test_zonefile.pdb"
  "test_zonefile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zonefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
