# Empty compiler generated dependencies file for test_zonefile.
# This may be replaced when dependencies are built.
