# Empty compiler generated dependencies file for test_misbehavior.
# This may be replaced when dependencies are built.
