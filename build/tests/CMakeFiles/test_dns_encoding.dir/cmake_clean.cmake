file(REMOVE_RECURSE
  "CMakeFiles/test_dns_encoding.dir/test_dns_encoding.cpp.o"
  "CMakeFiles/test_dns_encoding.dir/test_dns_encoding.cpp.o.d"
  "test_dns_encoding"
  "test_dns_encoding.pdb"
  "test_dns_encoding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
