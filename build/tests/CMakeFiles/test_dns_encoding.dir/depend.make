# Empty dependencies file for test_dns_encoding.
# This may be replaced when dependencies are built.
