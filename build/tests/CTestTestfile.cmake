# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_dns_name[1]_include.cmake")
include("/root/repo/build/tests/test_dns_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_dns_rdata[1]_include.cmake")
include("/root/repo/build/tests/test_dns_message[1]_include.cmake")
include("/root/repo/build/tests/test_dns_dnssec[1]_include.cmake")
include("/root/repo/build/tests/test_zone[1]_include.cmake")
include("/root/repo/build/tests/test_server[1]_include.cmake")
include("/root/repo/build/tests/test_resolver[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_scanner[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_property_codec[1]_include.cmake")
include("/root/repo/build/tests/test_property_nsec3[1]_include.cmake")
include("/root/repo/build/tests/test_property_resolver[1]_include.cmake")
include("/root/repo/build/tests/test_zonefile[1]_include.cmake")
include("/root/repo/build/tests/test_misbehavior[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
