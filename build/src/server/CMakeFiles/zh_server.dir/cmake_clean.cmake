file(REMOVE_RECURSE
  "CMakeFiles/zh_server.dir/auth_server.cpp.o"
  "CMakeFiles/zh_server.dir/auth_server.cpp.o.d"
  "libzh_server.a"
  "libzh_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
