# Empty compiler generated dependencies file for zh_server.
# This may be replaced when dependencies are built.
