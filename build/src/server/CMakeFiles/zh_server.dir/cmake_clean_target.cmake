file(REMOVE_RECURSE
  "libzh_server.a"
)
