# Empty dependencies file for zh_zone.
# This may be replaced when dependencies are built.
