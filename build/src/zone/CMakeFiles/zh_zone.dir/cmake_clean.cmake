file(REMOVE_RECURSE
  "CMakeFiles/zh_zone.dir/signer.cpp.o"
  "CMakeFiles/zh_zone.dir/signer.cpp.o.d"
  "CMakeFiles/zh_zone.dir/zone.cpp.o"
  "CMakeFiles/zh_zone.dir/zone.cpp.o.d"
  "CMakeFiles/zh_zone.dir/zonefile.cpp.o"
  "CMakeFiles/zh_zone.dir/zonefile.cpp.o.d"
  "libzh_zone.a"
  "libzh_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
