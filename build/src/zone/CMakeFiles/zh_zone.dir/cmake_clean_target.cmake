file(REMOVE_RECURSE
  "libzh_zone.a"
)
