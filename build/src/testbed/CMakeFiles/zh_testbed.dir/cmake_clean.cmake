file(REMOVE_RECURSE
  "CMakeFiles/zh_testbed.dir/internet.cpp.o"
  "CMakeFiles/zh_testbed.dir/internet.cpp.o.d"
  "libzh_testbed.a"
  "libzh_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
