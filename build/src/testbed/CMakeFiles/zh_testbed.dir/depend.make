# Empty dependencies file for zh_testbed.
# This may be replaced when dependencies are built.
