file(REMOVE_RECURSE
  "libzh_testbed.a"
)
