file(REMOVE_RECURSE
  "libzh_crypto.a"
)
