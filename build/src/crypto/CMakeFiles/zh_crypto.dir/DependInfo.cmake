
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/nsec3_hash.cpp" "src/crypto/CMakeFiles/zh_crypto.dir/nsec3_hash.cpp.o" "gcc" "src/crypto/CMakeFiles/zh_crypto.dir/nsec3_hash.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/zh_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/zh_crypto.dir/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha2.cpp" "src/crypto/CMakeFiles/zh_crypto.dir/sha2.cpp.o" "gcc" "src/crypto/CMakeFiles/zh_crypto.dir/sha2.cpp.o.d"
  "/root/repo/src/crypto/signing.cpp" "src/crypto/CMakeFiles/zh_crypto.dir/signing.cpp.o" "gcc" "src/crypto/CMakeFiles/zh_crypto.dir/signing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
