# Empty compiler generated dependencies file for zh_crypto.
# This may be replaced when dependencies are built.
