file(REMOVE_RECURSE
  "CMakeFiles/zh_crypto.dir/nsec3_hash.cpp.o"
  "CMakeFiles/zh_crypto.dir/nsec3_hash.cpp.o.d"
  "CMakeFiles/zh_crypto.dir/sha1.cpp.o"
  "CMakeFiles/zh_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/zh_crypto.dir/sha2.cpp.o"
  "CMakeFiles/zh_crypto.dir/sha2.cpp.o.d"
  "CMakeFiles/zh_crypto.dir/signing.cpp.o"
  "CMakeFiles/zh_crypto.dir/signing.cpp.o.d"
  "libzh_crypto.a"
  "libzh_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
