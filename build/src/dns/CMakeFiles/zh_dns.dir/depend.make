# Empty dependencies file for zh_dns.
# This may be replaced when dependencies are built.
