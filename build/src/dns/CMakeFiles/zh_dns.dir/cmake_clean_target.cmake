file(REMOVE_RECURSE
  "libzh_dns.a"
)
