file(REMOVE_RECURSE
  "CMakeFiles/zh_dns.dir/dnssec.cpp.o"
  "CMakeFiles/zh_dns.dir/dnssec.cpp.o.d"
  "CMakeFiles/zh_dns.dir/encoding.cpp.o"
  "CMakeFiles/zh_dns.dir/encoding.cpp.o.d"
  "CMakeFiles/zh_dns.dir/message.cpp.o"
  "CMakeFiles/zh_dns.dir/message.cpp.o.d"
  "CMakeFiles/zh_dns.dir/name.cpp.o"
  "CMakeFiles/zh_dns.dir/name.cpp.o.d"
  "CMakeFiles/zh_dns.dir/rdata.cpp.o"
  "CMakeFiles/zh_dns.dir/rdata.cpp.o.d"
  "CMakeFiles/zh_dns.dir/rr.cpp.o"
  "CMakeFiles/zh_dns.dir/rr.cpp.o.d"
  "CMakeFiles/zh_dns.dir/type_bitmap.cpp.o"
  "CMakeFiles/zh_dns.dir/type_bitmap.cpp.o.d"
  "CMakeFiles/zh_dns.dir/types.cpp.o"
  "CMakeFiles/zh_dns.dir/types.cpp.o.d"
  "libzh_dns.a"
  "libzh_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
