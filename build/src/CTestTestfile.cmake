# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("crypto")
subdirs("dns")
subdirs("zone")
subdirs("simnet")
subdirs("server")
subdirs("resolver")
subdirs("testbed")
subdirs("workload")
subdirs("analysis")
subdirs("scanner")
