file(REMOVE_RECURSE
  "CMakeFiles/zh_workload.dir/install.cpp.o"
  "CMakeFiles/zh_workload.dir/install.cpp.o.d"
  "CMakeFiles/zh_workload.dir/popularity.cpp.o"
  "CMakeFiles/zh_workload.dir/popularity.cpp.o.d"
  "CMakeFiles/zh_workload.dir/resolver_population.cpp.o"
  "CMakeFiles/zh_workload.dir/resolver_population.cpp.o.d"
  "CMakeFiles/zh_workload.dir/spec.cpp.o"
  "CMakeFiles/zh_workload.dir/spec.cpp.o.d"
  "libzh_workload.a"
  "libzh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
