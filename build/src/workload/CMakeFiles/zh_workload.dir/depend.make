# Empty dependencies file for zh_workload.
# This may be replaced when dependencies are built.
