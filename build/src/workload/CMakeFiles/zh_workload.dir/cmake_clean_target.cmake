file(REMOVE_RECURSE
  "libzh_workload.a"
)
