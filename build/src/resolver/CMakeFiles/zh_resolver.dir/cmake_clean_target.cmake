file(REMOVE_RECURSE
  "libzh_resolver.a"
)
