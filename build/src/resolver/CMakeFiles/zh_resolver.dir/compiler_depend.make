# Empty compiler generated dependencies file for zh_resolver.
# This may be replaced when dependencies are built.
