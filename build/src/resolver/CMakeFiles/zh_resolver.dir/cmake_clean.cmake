file(REMOVE_RECURSE
  "CMakeFiles/zh_resolver.dir/policy.cpp.o"
  "CMakeFiles/zh_resolver.dir/policy.cpp.o.d"
  "CMakeFiles/zh_resolver.dir/resolver.cpp.o"
  "CMakeFiles/zh_resolver.dir/resolver.cpp.o.d"
  "libzh_resolver.a"
  "libzh_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
