# Empty compiler generated dependencies file for zh_analysis.
# This may be replaced when dependencies are built.
