file(REMOVE_RECURSE
  "CMakeFiles/zh_analysis.dir/export.cpp.o"
  "CMakeFiles/zh_analysis.dir/export.cpp.o.d"
  "CMakeFiles/zh_analysis.dir/stats.cpp.o"
  "CMakeFiles/zh_analysis.dir/stats.cpp.o.d"
  "libzh_analysis.a"
  "libzh_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
