file(REMOVE_RECURSE
  "libzh_analysis.a"
)
