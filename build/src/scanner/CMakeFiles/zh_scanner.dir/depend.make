# Empty dependencies file for zh_scanner.
# This may be replaced when dependencies are built.
