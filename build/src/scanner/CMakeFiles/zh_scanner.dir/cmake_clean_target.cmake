file(REMOVE_RECURSE
  "libzh_scanner.a"
)
