file(REMOVE_RECURSE
  "CMakeFiles/zh_scanner.dir/campaign.cpp.o"
  "CMakeFiles/zh_scanner.dir/campaign.cpp.o.d"
  "CMakeFiles/zh_scanner.dir/domain_scanner.cpp.o"
  "CMakeFiles/zh_scanner.dir/domain_scanner.cpp.o.d"
  "CMakeFiles/zh_scanner.dir/downgrade.cpp.o"
  "CMakeFiles/zh_scanner.dir/downgrade.cpp.o.d"
  "CMakeFiles/zh_scanner.dir/resolver_prober.cpp.o"
  "CMakeFiles/zh_scanner.dir/resolver_prober.cpp.o.d"
  "CMakeFiles/zh_scanner.dir/zone_walker.cpp.o"
  "CMakeFiles/zh_scanner.dir/zone_walker.cpp.o.d"
  "libzh_scanner.a"
  "libzh_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
