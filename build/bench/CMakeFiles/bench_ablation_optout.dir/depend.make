# Empty dependencies file for bench_ablation_optout.
# This may be replaced when dependencies are built.
