file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optout.dir/bench_ablation_optout.cpp.o"
  "CMakeFiles/bench_ablation_optout.dir/bench_ablation_optout.cpp.o.d"
  "bench_ablation_optout"
  "bench_ablation_optout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
