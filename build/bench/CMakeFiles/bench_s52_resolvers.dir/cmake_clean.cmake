file(REMOVE_RECURSE
  "CMakeFiles/bench_s52_resolvers.dir/bench_s52_resolvers.cpp.o"
  "CMakeFiles/bench_s52_resolvers.dir/bench_s52_resolvers.cpp.o.d"
  "bench_s52_resolvers"
  "bench_s52_resolvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s52_resolvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
