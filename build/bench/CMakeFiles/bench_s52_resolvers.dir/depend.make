# Empty dependencies file for bench_s52_resolvers.
# This may be replaced when dependencies are built.
