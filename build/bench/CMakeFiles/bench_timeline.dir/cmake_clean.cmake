file(REMOVE_RECURSE
  "CMakeFiles/bench_timeline.dir/bench_timeline.cpp.o"
  "CMakeFiles/bench_timeline.dir/bench_timeline.cpp.o.d"
  "bench_timeline"
  "bench_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
