# Empty compiler generated dependencies file for bench_ablation_salt.
# This may be replaced when dependencies are built.
