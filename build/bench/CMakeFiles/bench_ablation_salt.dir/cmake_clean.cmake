file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_salt.dir/bench_ablation_salt.cpp.o"
  "CMakeFiles/bench_ablation_salt.dir/bench_ablation_salt.cpp.o.d"
  "bench_ablation_salt"
  "bench_ablation_salt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_salt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
