# Empty dependencies file for bench_micro_nsec3.
# This may be replaced when dependencies are built.
