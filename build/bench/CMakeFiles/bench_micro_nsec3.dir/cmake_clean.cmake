file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_nsec3.dir/bench_micro_nsec3.cpp.o"
  "CMakeFiles/bench_micro_nsec3.dir/bench_micro_nsec3.cpp.o.d"
  "bench_micro_nsec3"
  "bench_micro_nsec3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_nsec3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
