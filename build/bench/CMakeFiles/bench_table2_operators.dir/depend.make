# Empty dependencies file for bench_table2_operators.
# This may be replaced when dependencies are built.
