file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_operators.dir/bench_table2_operators.cpp.o"
  "CMakeFiles/bench_table2_operators.dir/bench_table2_operators.cpp.o.d"
  "bench_table2_operators"
  "bench_table2_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
