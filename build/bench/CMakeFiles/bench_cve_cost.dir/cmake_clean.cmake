file(REMOVE_RECURSE
  "CMakeFiles/bench_cve_cost.dir/bench_cve_cost.cpp.o"
  "CMakeFiles/bench_cve_cost.dir/bench_cve_cost.cpp.o.d"
  "bench_cve_cost"
  "bench_cve_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cve_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
