# Empty dependencies file for bench_cve_cost.
# This may be replaced when dependencies are built.
