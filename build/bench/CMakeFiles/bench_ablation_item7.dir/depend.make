# Empty dependencies file for bench_ablation_item7.
# This may be replaced when dependencies are built.
