
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_resolvers.cpp" "bench/CMakeFiles/bench_fig3_resolvers.dir/bench_fig3_resolvers.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_resolvers.dir/bench_fig3_resolvers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scanner/CMakeFiles/zh_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/zh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/zh_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/zh_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/zh_server.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/zh_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/zh_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zh_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/zh_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
