file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_resolvers.dir/bench_fig3_resolvers.cpp.o"
  "CMakeFiles/bench_fig3_resolvers.dir/bench_fig3_resolvers.cpp.o.d"
  "bench_fig3_resolvers"
  "bench_fig3_resolvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_resolvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
