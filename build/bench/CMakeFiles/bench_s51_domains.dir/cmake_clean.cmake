file(REMOVE_RECURSE
  "CMakeFiles/bench_s51_domains.dir/bench_s51_domains.cpp.o"
  "CMakeFiles/bench_s51_domains.dir/bench_s51_domains.cpp.o.d"
  "bench_s51_domains"
  "bench_s51_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s51_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
