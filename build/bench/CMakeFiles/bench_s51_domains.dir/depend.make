# Empty dependencies file for bench_s51_domains.
# This may be replaced when dependencies are built.
