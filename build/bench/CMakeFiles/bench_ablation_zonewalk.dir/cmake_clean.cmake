file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zonewalk.dir/bench_ablation_zonewalk.cpp.o"
  "CMakeFiles/bench_ablation_zonewalk.dir/bench_ablation_zonewalk.cpp.o.d"
  "bench_ablation_zonewalk"
  "bench_ablation_zonewalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zonewalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
