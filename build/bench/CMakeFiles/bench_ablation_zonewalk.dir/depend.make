# Empty dependencies file for bench_ablation_zonewalk.
# This may be replaced when dependencies are built.
