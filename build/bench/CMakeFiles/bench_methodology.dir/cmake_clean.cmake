file(REMOVE_RECURSE
  "CMakeFiles/bench_methodology.dir/bench_methodology.cpp.o"
  "CMakeFiles/bench_methodology.dir/bench_methodology.cpp.o.d"
  "bench_methodology"
  "bench_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
