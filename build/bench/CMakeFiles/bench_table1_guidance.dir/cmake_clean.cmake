file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_guidance.dir/bench_table1_guidance.cpp.o"
  "CMakeFiles/bench_table1_guidance.dir/bench_table1_guidance.cpp.o.d"
  "bench_table1_guidance"
  "bench_table1_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
