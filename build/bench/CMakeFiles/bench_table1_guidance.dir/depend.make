# Empty dependencies file for bench_table1_guidance.
# This may be replaced when dependencies are built.
