# Empty compiler generated dependencies file for dig.
# This may be replaced when dependencies are built.
