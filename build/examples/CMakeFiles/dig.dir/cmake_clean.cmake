file(REMOVE_RECURSE
  "CMakeFiles/dig.dir/dig.cpp.o"
  "CMakeFiles/dig.dir/dig.cpp.o.d"
  "dig"
  "dig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
