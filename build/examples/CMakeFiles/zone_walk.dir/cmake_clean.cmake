file(REMOVE_RECURSE
  "CMakeFiles/zone_walk.dir/zone_walk.cpp.o"
  "CMakeFiles/zone_walk.dir/zone_walk.cpp.o.d"
  "zone_walk"
  "zone_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
