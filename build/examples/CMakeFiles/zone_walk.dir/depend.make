# Empty dependencies file for zone_walk.
# This may be replaced when dependencies are built.
