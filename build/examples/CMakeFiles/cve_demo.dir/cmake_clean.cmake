file(REMOVE_RECURSE
  "CMakeFiles/cve_demo.dir/cve_demo.cpp.o"
  "CMakeFiles/cve_demo.dir/cve_demo.cpp.o.d"
  "cve_demo"
  "cve_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
