# Empty dependencies file for cve_demo.
# This may be replaced when dependencies are built.
